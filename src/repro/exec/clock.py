"""Injectable clocks for the resilience runtime.

Everything in :mod:`repro.exec` that needs wall time takes a
:class:`Clock` instead of calling :mod:`time` directly.  Two reasons:

- **determinism** — the repo's R2 lint bans direct clock calls outside
  sanctioned modules; this file is the sanctioned home for the exec
  layer, and every other exec module stays clock-free and testable;
- **virtual time** — :class:`ManualClock` lets the chaos harness inject
  "latency" and the tests drive deadlines deterministically, with no
  real sleeping and no flaky timing assertions.

``seconds`` is the unit throughout (matching ``time.monotonic``);
the public policy API speaks milliseconds and converts at the edge.
"""

from __future__ import annotations

import time
from typing import Protocol, runtime_checkable

__all__ = ["Clock", "MonotonicClock", "ManualClock"]


@runtime_checkable
class Clock(Protocol):
    """What the resilience runtime needs from a time source."""

    def now(self) -> float:
        """Current time in seconds; only differences are meaningful."""
        ...

    def sleep(self, seconds: float) -> None:
        """Let ``seconds`` pass (really or virtually)."""
        ...


class MonotonicClock:
    """The production clock: ``time.monotonic`` + ``time.sleep``."""

    def now(self) -> float:
        return time.monotonic()

    def sleep(self, seconds: float) -> None:
        if seconds > 0.0:
            time.sleep(seconds)

    def __repr__(self) -> str:
        return "MonotonicClock()"


class ManualClock:
    """A virtual clock advanced explicitly; the test/chaos time source.

    ``sleep`` advances virtual time instead of blocking, so injected
    latency is free to run and exact to assert on.
    """

    def __init__(self, start: float = 0.0):
        self._now = float(start)

    def now(self) -> float:
        return self._now

    def sleep(self, seconds: float) -> None:
        self.advance(seconds)

    def advance(self, seconds: float) -> None:
        if seconds < 0.0:
            raise ValueError("cannot advance a clock backwards")
        self._now += seconds

    def __repr__(self) -> str:
        return "ManualClock(now=%.6f)" % self._now
