"""Execution policies and the cooperative-cancellation budget.

A CoSKQ exact search is worst-case exponential; at serving time an
unbounded search is a liability, not a guarantee.  :class:`ExecutionPolicy`
declares the envelope one solve attempt must stay inside — wall-clock
deadline, work budget, retry allowance — and :class:`Budget` enforces it
*cooperatively*: solvers thread ``budget.tick()`` through their hot loops
(via :meth:`repro.algorithms.base.CoSKQAlgorithm._bump`), and the budget
raises a typed :class:`~repro.errors.BudgetExceededError` /
:class:`~repro.errors.DeadlineExceededError` carrying the solver's
partial progress the moment a limit is crossed.

The deadline is probed only every ``checkpoint_interval`` work units so
the common case costs one integer compare per tick; the abort latency is
therefore bounded by one checkpoint interval of work, which is the
"±1 checkpoint interval" slack quoted in the robustness guarantees
(docs/ROBUSTNESS.md).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Protocol, Tuple, Type, runtime_checkable

from repro.errors import (
    BudgetExceededError,
    DeadlineExceededError,
    InjectedFaultError,
    InvalidParameterError,
)
from repro.exec.clock import Clock, MonotonicClock

__all__ = ["Checkpoint", "Budget", "ExecutionPolicy", "DEFAULT_CHECKPOINT_INTERVAL"]

#: Work units between deadline probes (a power of two; one integer
#: compare per tick between probes).
DEFAULT_CHECKPOINT_INTERVAL = 64


@runtime_checkable
class Checkpoint(Protocol):
    """The hook a solver needs: chargeable ticks + free deadline probes.

    :class:`Budget` is the canonical implementation; tests may substitute
    recording doubles.
    """

    def tick(self, amount: int = 1, counters: Optional[Dict[str, int]] = None) -> None:
        """Charge ``amount`` work units; may raise a typed abort."""
        ...

    def checkpoint(self, counters: Optional[Dict[str, int]] = None) -> None:
        """Probe the deadline without charging work."""
        ...


class Budget:
    """One solve attempt's cooperative cancellation token.

    Tracks work spent against an optional ``work_limit`` and an optional
    absolute ``deadline_at`` (in ``clock`` seconds).  Not reusable across
    attempts — the executor mints a fresh one per attempt so retry
    accounting stays per-attempt while the deadline stays global.
    """

    __slots__ = (
        "work_limit",
        "deadline_at",
        "started",
        "clock",
        "checkpoint_interval",
        "spent",
        "checkpoints",
        "_next_probe",
    )

    def __init__(
        self,
        work_limit: Optional[int] = None,
        deadline_at: Optional[float] = None,
        clock: Optional[Clock] = None,
        started: Optional[float] = None,
        checkpoint_interval: int = DEFAULT_CHECKPOINT_INTERVAL,
    ):
        if checkpoint_interval < 1:
            raise InvalidParameterError("checkpoint_interval must be >= 1")
        if work_limit is not None and work_limit < 0:
            raise InvalidParameterError("work_limit must be >= 0")
        self.work_limit = work_limit
        self.deadline_at = deadline_at
        self.clock: Clock = clock if clock is not None else MonotonicClock()
        self.started = started if started is not None else self.clock.now()
        self.checkpoint_interval = checkpoint_interval
        self.spent = 0
        self.checkpoints = 0
        self._next_probe = checkpoint_interval

    def tick(self, amount: int = 1, counters: Optional[Dict[str, int]] = None) -> None:
        """Charge work; abort with partial progress when a limit is hit."""
        self.spent += amount
        if self.work_limit is not None and self.spent > self.work_limit:
            raise BudgetExceededError(
                "work", self.work_limit, self.spent, counters=counters
            )
        if self.spent >= self._next_probe:
            self._next_probe = self.spent + self.checkpoint_interval
            self.checkpoint(counters)

    def checkpoint(self, counters: Optional[Dict[str, int]] = None) -> None:
        """Probe the deadline now (also called every interval by tick)."""
        self.checkpoints += 1
        if self.deadline_at is None:
            return
        now = self.clock.now()
        if now > self.deadline_at:
            raise DeadlineExceededError(
                deadline_ms=(self.deadline_at - self.started) * 1000.0,
                elapsed_ms=(now - self.started) * 1000.0,
                counters=counters,
            )

    def remaining_work(self) -> Optional[int]:
        """Work units left, or None when unlimited."""
        if self.work_limit is None:
            return None
        return max(0, self.work_limit - self.spent)

    def remaining_seconds(self) -> Optional[float]:
        """Seconds until the deadline, or None when undeadlined."""
        if self.deadline_at is None:
            return None
        return self.deadline_at - self.clock.now()

    def __repr__(self) -> str:
        return "Budget(spent=%d, work_limit=%r, deadline_at=%r)" % (
            self.spent,
            self.work_limit,
            self.deadline_at,
        )


@dataclass(frozen=True)
class ExecutionPolicy:
    """The declarative envelope one query execution must stay inside.

    - ``deadline_ms`` — wall-clock limit for the *whole* execution
      (shared across every stage and retry of a fallback chain);
    - ``work_budget`` — work-unit limit per solve attempt (each stage
      and each retry gets a fresh allowance);
    - ``max_retries`` — extra attempts per stage after a transient
      failure (an exception listed in ``retry_on``);
    - ``retry_on`` — exception types treated as transient; budget and
      deadline aborts are never retried (retrying a deterministic
      blow-up cannot help), they degrade to the next stage instead;
    - ``checkpoint_interval`` — work units between deadline probes;
    - ``always_answer`` — run the chain's last stage with neither the
      deadline nor the work budget, so the cheap last resort can still
      answer after slow stages ate the whole allowance.  Set False to
      make the limits a hard wall for every stage.
    """

    deadline_ms: Optional[float] = None
    work_budget: Optional[int] = None
    max_retries: int = 0
    retry_on: Tuple[Type[BaseException], ...] = field(
        default=(InjectedFaultError,)
    )
    checkpoint_interval: int = DEFAULT_CHECKPOINT_INTERVAL
    always_answer: bool = True

    def __post_init__(self) -> None:
        if self.deadline_ms is not None and self.deadline_ms <= 0:
            raise InvalidParameterError("deadline_ms must be positive")
        if self.work_budget is not None and self.work_budget < 0:
            raise InvalidParameterError("work_budget must be >= 0")
        if self.max_retries < 0:
            raise InvalidParameterError("max_retries must be >= 0")
        if self.checkpoint_interval < 1:
            raise InvalidParameterError("checkpoint_interval must be >= 1")

    def budget(
        self,
        clock: Clock,
        started: float,
        deadline_at: Optional[float],
    ) -> Budget:
        """A fresh per-attempt budget under this policy."""
        return Budget(
            work_limit=self.work_budget,
            deadline_at=deadline_at,
            clock=clock,
            started=started,
            checkpoint_interval=self.checkpoint_interval,
        )

    def is_transient(self, error: BaseException) -> bool:
        """Whether ``error`` is worth retrying on the same stage."""
        return isinstance(error, self.retry_on)
