"""Deterministic fault injection for the resilience runtime.

The retry and fallback paths of :mod:`repro.exec` only matter when
things go wrong — so this module makes things go wrong *on purpose and
deterministically*.  A :class:`FaultPlan` is a seed-driven schedule of
faults; :class:`ChaosIndex` wraps any
:class:`~repro.index.protocol.SpatialTextIndex` and consults the plan
before delegating each call, injecting:

- ``fail_nth(n)`` — the n-th intercepted call (1-based, across all
  methods) raises :class:`~repro.errors.InjectedFaultError`;
- ``flaky_once(method)`` — the first call of ``method`` fails, every
  later call succeeds (the canonical transient fault: one retry heals);
- ``fail_method(method)`` — every call of ``method`` fails (a dead
  backend: only falling back to a stage that avoids the method, or
  giving up with ``ExecutionFailedError``, escapes it);
- ``fail_rate(p)`` — each call fails with probability ``p`` under the
  plan's seed (via :mod:`repro.utils.rng`, so runs are reproducible);
- ``latency(seconds, every=k)`` — every k-th call sleeps on the plan's
  clock before proceeding; with a
  :class:`~repro.exec.clock.ManualClock` the "latency" is virtual, so
  deadline behavior is testable with zero real waiting.

Everything is observable: the wrapper logs ``(method, call_number)``
per call and the plan records which call numbers it sabotaged.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterator, List, Optional, Sequence, Set, Tuple

from repro.algorithms.base import SearchContext
from repro.errors import InjectedFaultError, InvalidParameterError
from repro.exec.clock import Clock, ManualClock
from repro.geometry.circle import Circle
from repro.geometry.point import Point
from repro.index.protocol import SpatialTextIndex
from repro.model.dataset import Dataset
from repro.model.objects import SpatialObject
from repro.model.query import Query
from repro.utils.rng import substream

__all__ = ["FaultPlan", "ChaosIndex", "chaos_context"]


class FaultPlan:
    """A deterministic, seed-driven schedule of injected faults.

    Builder-style: ``FaultPlan(seed=7).flaky_once("nearest_neighbor_set")
    .latency(0.05, every=3)``.  The same plan object is stateful across
    calls (it remembers which one-shot faults already fired); build a
    fresh plan per experiment run.
    """

    def __init__(self, seed: int = 0):
        self.seed = seed
        self._fail_calls: Set[int] = set()
        self._flaky_methods: Set[str] = set()
        self._dead_methods: Set[str] = set()
        self._fail_rate = 0.0
        self._latency_seconds = 0.0
        self._latency_every = 0
        self._fired_flaky: Set[str] = set()
        self._rng = substream(seed, "chaos-fail-rate")
        #: Call numbers this plan actually sabotaged (for assertions).
        self.injected: List[int] = []

    # -- builders --------------------------------------------------------------

    def fail_nth(self, *call_numbers: int) -> "FaultPlan":
        """Fail these 1-based global call numbers, once each."""
        for n in call_numbers:
            if n < 1:
                raise InvalidParameterError("call numbers are 1-based")
            self._fail_calls.add(n)
        return self

    def flaky_once(self, method: str) -> "FaultPlan":
        """Fail the first call of ``method``; succeed afterwards."""
        self._flaky_methods.add(method)
        return self

    def fail_method(self, method: str) -> "FaultPlan":
        """Fail every call of ``method`` (a permanently dead backend)."""
        self._dead_methods.add(method)
        return self

    def fail_rate(self, probability: float) -> "FaultPlan":
        """Fail each call with this probability (seed-reproducible)."""
        if not 0.0 <= probability <= 1.0:
            raise InvalidParameterError("probability must be in [0, 1]")
        self._fail_rate = probability
        return self

    def latency(self, seconds: float, every: int = 1) -> "FaultPlan":
        """Sleep ``seconds`` on the clock before every ``every``-th call."""
        if seconds < 0.0 or every < 1:
            raise InvalidParameterError("latency needs seconds >= 0, every >= 1")
        self._latency_seconds = seconds
        self._latency_every = every
        return self

    # -- the decision point ----------------------------------------------------

    def before_call(self, method: str, call_number: int, clock: Clock) -> None:
        """Inject whatever this plan schedules for this call."""
        if self._latency_every and call_number % self._latency_every == 0:
            clock.sleep(self._latency_seconds)
        fail = False
        if call_number in self._fail_calls:
            self._fail_calls.discard(call_number)
            fail = True
        elif method in self._dead_methods:
            fail = True
        elif method in self._flaky_methods and method not in self._fired_flaky:
            self._fired_flaky.add(method)
            fail = True
        elif self._fail_rate > 0.0 and self._rng.random() < self._fail_rate:
            fail = True
        if fail:
            self.injected.append(call_number)
            raise InjectedFaultError(method, call_number)


class ChaosIndex:
    """A :class:`SpatialTextIndex` decorator that injects planned faults.

    Structurally conforms to the index protocol, so it drops into
    :class:`~repro.algorithms.base.SearchContext` (via
    :func:`chaos_context`) and every algorithm runs against it unchanged
    — which is the point: the solvers under test cannot tell a chaos
    run from a production incident.
    """

    def __init__(
        self,
        inner: SpatialTextIndex,
        plan: FaultPlan,
        clock: Optional[Clock] = None,
    ):
        self.inner = inner
        self.plan = plan
        self.clock: Clock = clock if clock is not None else ManualClock()
        self.calls = 0
        #: ``(method, call_number)`` per intercepted call, in order.
        self.call_log: List[Tuple[str, int]] = []

    @classmethod
    def build(cls, dataset: Dataset, max_entries: int = 16) -> "ChaosIndex":
        """Chaos wraps a built index; direct builds are a usage error."""
        raise InvalidParameterError(
            "ChaosIndex wraps an existing index: ChaosIndex(inner, plan)"
        )

    def _intercept(self, method: str) -> None:
        self.calls += 1
        self.call_log.append((method, self.calls))
        self.plan.before_call(method, self.calls, self.clock)

    # -- the SpatialTextIndex surface, faulted then delegated ------------------

    def __len__(self) -> int:
        return len(self.inner)

    def keyword_nn(
        self, point: Point, keyword_id: int
    ) -> Tuple[float, SpatialObject] | None:
        self._intercept("keyword_nn")
        return self.inner.keyword_nn(point, keyword_id)

    def nearest_relevant_iter(
        self, point: Point, keywords: FrozenSet[int], within: Circle | None = None
    ) -> Iterator[Tuple[float, SpatialObject]]:
        self._intercept("nearest_relevant_iter")
        return self.inner.nearest_relevant_iter(point, keywords, within)

    def nearest_neighbor_set(
        self, query: Query
    ) -> Dict[int, Tuple[float, SpatialObject]]:
        self._intercept("nearest_neighbor_set")
        return self.inner.nearest_neighbor_set(query)

    def relevant_in_circle(
        self, circle: Circle, keywords: FrozenSet[int]
    ) -> List[SpatialObject]:
        self._intercept("relevant_in_circle")
        return self.inner.relevant_in_circle(circle, keywords)

    def relevant_in_region(
        self, circles: Sequence[Circle], keywords: FrozenSet[int]
    ) -> List[SpatialObject]:
        self._intercept("relevant_in_region")
        return self.inner.relevant_in_region(circles, keywords)

    def relevant_objects(self, keywords: FrozenSet[int]) -> List[SpatialObject]:
        self._intercept("relevant_objects")
        return self.inner.relevant_objects(keywords)

    def objects_in_circle(self, circle: Circle) -> List[SpatialObject]:
        self._intercept("objects_in_circle")
        return self.inner.objects_in_circle(circle)

    def __repr__(self) -> str:
        return "ChaosIndex(%r, calls=%d)" % (self.inner, self.calls)


def chaos_context(
    context: SearchContext, plan: FaultPlan, clock: Optional[Clock] = None
) -> SearchContext:
    """A context whose spatial index is sabotaged by ``plan``.

    The inverted index (pure keyword lookups) is shared unwrapped, so
    feasibility checks stay truthful — chaos targets the spatial search
    path, which is where the interesting failures live.
    """
    return context.with_index(ChaosIndex(context.index, plan, clock=clock))
