"""repro.exec — the resilience runtime between callers and solvers.

The CoSKQ exact algorithms are worst-case exponential; this package is
the layer that makes them *servable*: declare an envelope
(:class:`ExecutionPolicy`), declare a degradation order
(:class:`FallbackChain`), and :class:`ResilientExecutor` guarantees a
typed outcome — an answer stamped with :class:`ExecutionProvenance`, or
one aggregate :class:`~repro.errors.ExecutionFailedError`.  Batches get
per-query isolation via :class:`BatchExecutor`, and the whole machinery
is deterministically testable through the :mod:`repro.exec.chaos` fault
injector and the virtual :class:`ManualClock`.

Quickstart::

    from repro.exec import ExecutionPolicy, FallbackChain, ResilientExecutor

    chain = FallbackChain.of(context, "maxsum-exact", "maxsum-appro", "nn-set")
    executor = ResilientExecutor(
        chain, ExecutionPolicy(deadline_ms=50.0, work_budget=200_000)
    )
    result = executor.solve(query)          # never hangs, never raw-errors
    print(result.provenance.describe())     # who answered, who failed, ratio

See ``docs/ROBUSTNESS.md`` for the failure taxonomy and the chaos
harness cookbook.
"""

from repro.exec.batch import BatchExecutor, BatchReport, QueryFailure
from repro.exec.chaos import ChaosIndex, FaultPlan, chaos_context
from repro.exec.clock import Clock, ManualClock, MonotonicClock
from repro.exec.executor import ResilientExecutor
from repro.exec.fallback import ExecutionProvenance, FallbackChain, StageFailure
from repro.exec.policy import (
    DEFAULT_CHECKPOINT_INTERVAL,
    Budget,
    Checkpoint,
    ExecutionPolicy,
)

__all__ = [
    # policy / budget
    "ExecutionPolicy",
    "Budget",
    "Checkpoint",
    "DEFAULT_CHECKPOINT_INTERVAL",
    # chain / provenance
    "FallbackChain",
    "StageFailure",
    "ExecutionProvenance",
    # executors
    "ResilientExecutor",
    "BatchExecutor",
    "BatchReport",
    "QueryFailure",
    # chaos + clocks
    "FaultPlan",
    "ChaosIndex",
    "chaos_context",
    "Clock",
    "ManualClock",
    "MonotonicClock",
]
