"""Road networks: weighted graphs with shortest-path distances.

The paper's conclusion names extending CoSKQ "to other distance metrics
such as road networks" as future work; this subpackage provides that
extension.  A :class:`RoadNetwork` is an undirected weighted graph whose
vertices carry planar coordinates; distances between objects become
shortest-path lengths instead of Euclidean ones.

Dijkstra runs are memoized per source, so the CoSKQ algorithms — which
reuse a handful of sources (the query node, owner candidates, chosen
members) many times — pay for each expansion once.
"""

from __future__ import annotations

import heapq
import math
from typing import Dict, Iterable, Iterator, List, Optional, Tuple

from repro.errors import InvalidParameterError
from repro.geometry.point import Point
from repro.utils.rng import substream

__all__ = ["RoadNetwork", "grid_network"]


class RoadNetwork:
    """An undirected weighted graph embedded in the plane."""

    def __init__(self):
        self._coords: Dict[int, Point] = {}
        self._adjacency: Dict[int, List[Tuple[int, float]]] = {}
        self._sssp_cache: Dict[int, Dict[int, float]] = {}

    # -- construction ------------------------------------------------------

    def add_node(self, node: int, location: Point) -> None:
        if node in self._coords:
            raise InvalidParameterError("node %d already exists" % node)
        self._coords[node] = location
        self._adjacency[node] = []

    def add_edge(self, a: int, b: int, weight: Optional[float] = None) -> None:
        """Add an undirected edge (weight defaults to Euclidean length)."""
        if a not in self._coords or b not in self._coords:
            raise InvalidParameterError("both endpoints must be nodes")
        if a == b:
            raise InvalidParameterError("self loops are not allowed")
        if weight is None:
            weight = self._coords[a].distance_to(self._coords[b])
        if weight < 0:
            raise InvalidParameterError("negative edge weight")
        self._adjacency[a].append((b, weight))
        self._adjacency[b].append((a, weight))
        self._sssp_cache.clear()

    # -- basic accessors ---------------------------------------------------

    def __len__(self) -> int:
        return len(self._coords)

    def nodes(self) -> Iterator[int]:
        return iter(self._coords)

    def location(self, node: int) -> Point:
        return self._coords[node]

    def neighbors(self, node: int) -> List[Tuple[int, float]]:
        return list(self._adjacency[node])

    def edge_count(self) -> int:
        return sum(len(adj) for adj in self._adjacency.values()) // 2

    def nearest_node(self, point: Point) -> int:
        """The node closest (Euclidean) to ``point`` — query snapping."""
        if not self._coords:
            raise InvalidParameterError("empty network")
        return min(
            self._coords,
            key=lambda n: (self._coords[n].squared_distance_to(point), n),
        )

    # -- distances ---------------------------------------------------------

    def shortest_paths_from(self, source: int) -> Dict[int, float]:
        """All shortest-path distances from ``source`` (memoized)."""
        cached = self._sssp_cache.get(source)
        if cached is not None:
            return cached
        dist: Dict[int, float] = {source: 0.0}
        heap: List[Tuple[float, int]] = [(0.0, source)]
        settled: set[int] = set()
        # Graph has no budget hook by design (it is shared infrastructure
        # below the solver layer); the loop settles each node at most once,
        # so it is bounded by the graph size.
        while heap:  # repro: noqa(R11) — bounded Dijkstra, no budget hook
            d, node = heapq.heappop(heap)
            if node in settled:
                continue
            settled.add(node)
            for neighbor, weight in self._adjacency[node]:
                candidate = d + weight
                if candidate < dist.get(neighbor, math.inf):
                    dist[neighbor] = candidate
                    heapq.heappush(heap, (candidate, neighbor))
        self._sssp_cache[source] = dist
        return dist

    def distance(self, a: int, b: int) -> float:
        """Shortest-path distance (inf when disconnected)."""
        return self.shortest_paths_from(a).get(b, math.inf)

    def expansion_from(self, source: int) -> Iterator[Tuple[float, int]]:
        """Nodes in ascending shortest-path distance from ``source``.

        A lazy Dijkstra: callers that stop early (e.g. keyword NN) never
        pay for the full expansion.
        """
        dist: Dict[int, float] = {source: 0.0}
        heap: List[Tuple[float, int]] = [(0.0, source)]
        settled: set[int] = set()
        # Same settle-once bound as shortest_paths_from; solver callers
        # checkpoint around each yielded node instead.
        while heap:  # repro: noqa(R11) — bounded Dijkstra, no budget hook
            d, node = heapq.heappop(heap)
            if node in settled:
                continue
            settled.add(node)
            yield d, node
            for neighbor, weight in self._adjacency[node]:
                candidate = d + weight
                if candidate < dist.get(neighbor, math.inf):
                    dist[neighbor] = candidate
                    heapq.heappush(heap, (candidate, neighbor))

    def is_connected(self) -> bool:
        if not self._coords:
            return True
        first = next(iter(self._coords))
        return len(self.shortest_paths_from(first)) == len(self._coords)


def grid_network(
    rows: int,
    cols: int,
    spacing: float = 10.0,
    diagonal_fraction: float = 0.15,
    removal_fraction: float = 0.1,
    seed: int = 0,
) -> RoadNetwork:
    """A perturbed grid road network — the standard synthetic road map.

    Starts from a rows×cols lattice (streets), adds a random fraction of
    diagonal shortcuts, then removes a random fraction of lattice edges
    *keeping the network connected* — giving the detours that make
    network distance genuinely different from Euclidean distance.
    """
    if rows < 1 or cols < 1:
        raise InvalidParameterError("grid needs at least one row and column")
    rng = substream(seed, "grid/%dx%d" % (rows, cols))
    network = RoadNetwork()

    def node_id(r: int, c: int) -> int:
        return r * cols + c

    for r in range(rows):
        for c in range(cols):
            jitter_x = rng.uniform(-0.2, 0.2) * spacing
            jitter_y = rng.uniform(-0.2, 0.2) * spacing
            network.add_node(
                node_id(r, c), Point(c * spacing + jitter_x, r * spacing + jitter_y)
            )

    lattice_edges: List[Tuple[int, int]] = []
    for r in range(rows):
        for c in range(cols):
            if c + 1 < cols:
                lattice_edges.append((node_id(r, c), node_id(r, c + 1)))
            if r + 1 < rows:
                lattice_edges.append((node_id(r, c), node_id(r + 1, c)))
    for a, b in lattice_edges:
        network.add_edge(a, b)

    # Diagonal shortcuts.
    for r in range(rows - 1):
        for c in range(cols - 1):
            if rng.random() < diagonal_fraction:
                network.add_edge(node_id(r, c), node_id(r + 1, c + 1))

    # Remove lattice edges while preserving connectivity.
    rng.shuffle(lattice_edges)
    removable = int(len(lattice_edges) * removal_fraction)
    for a, b in lattice_edges[:removable]:
        _try_remove_edge(network, a, b)
    return network


def _try_remove_edge(network: RoadNetwork, a: int, b: int) -> bool:
    """Remove edge (a, b) unless that disconnects the network."""
    adj_a = network._adjacency[a]
    adj_b = network._adjacency[b]
    entry_a = next((e for e in adj_a if e[0] == b), None)
    entry_b = next((e for e in adj_b if e[0] == a), None)
    if entry_a is None or entry_b is None:
        return False
    adj_a.remove(entry_a)
    adj_b.remove(entry_b)
    network._sssp_cache.clear()
    if math.isinf(network.distance(a, b)):
        adj_a.append(entry_a)
        adj_b.append(entry_b)
        network._sssp_cache.clear()
        return False
    return True
