"""Road-network CoSKQ (extension): graphs, datasets and solvers."""

from repro.network.algorithms import (
    NetworkBnBExact,
    NetworkContext,
    NetworkGreedyAppro,
    NetworkNNSetAlgorithm,
)
from repro.network.dataset import NetworkDataset, random_network_dataset
from repro.network.graph import RoadNetwork, grid_network

__all__ = [
    "RoadNetwork",
    "grid_network",
    "NetworkDataset",
    "random_network_dataset",
    "NetworkContext",
    "NetworkNNSetAlgorithm",
    "NetworkGreedyAppro",
    "NetworkBnBExact",
]
