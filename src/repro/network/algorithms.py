"""CoSKQ over road-network distance (extension; the paper's future work).

Every distance in the cost function becomes a shortest-path distance:
``d(o, q)`` from the (snapped) query node, ``d(o1, o2)`` between object
nodes.  The solver line-up mirrors the Euclidean one:

- :class:`NetworkNNSetAlgorithm` — ``N(q)`` by a single lazy Dijkstra
  expansion from the query node (the network analogue of per-keyword NN);
- :class:`NetworkGreedyAppro` — owner-driven approximation: owner
  candidates in ascending network distance (the expansion order *is* the
  ascending order), greedy completion by nearest-to-owner expansion;
- :class:`NetworkBnBExact` — best-first branch-and-bound over covers
  using the same admissible bound as the Euclidean baseline, with
  memoized single-source shortest paths.

The lens-region geometry of the Euclidean owner-driven exact search does
not transfer (triangle-inequality disks are much weaker under network
metrics), which is exactly why the paper left the network case open; the
BnB exact here is the honest baseline for that setting.
"""

from __future__ import annotations

import heapq
import itertools
import math
from typing import Dict, FrozenSet, List, Optional, Sequence, Tuple

from repro.cost.base import CostFunction, QueryAggregate
from repro.errors import (
    BudgetExceededError,
    InfeasibleQueryError,
    InvalidParameterError,
)
from repro.model.objects import SpatialObject
from repro.model.query import Query
from repro.model.result import CoSKQResult
from repro.network.dataset import NetworkDataset
from repro.utils.floatcmp import prune_cutoff

__all__ = [
    "NetworkContext",
    "NetworkNNSetAlgorithm",
    "NetworkGreedyAppro",
    "NetworkBnBExact",
]


class NetworkContext:
    """Shared per-dataset state: the graph, the objects, distance memos."""

    def __init__(self, dataset: NetworkDataset):
        self.dataset = dataset
        self.network = dataset.network
        self._objects_by_node: Dict[int, List[SpatialObject]] = {}
        for obj in dataset:
            self._objects_by_node.setdefault(dataset.node_of[obj.oid], []).append(obj)

    def query_node(self, query: Query) -> int:
        """Snap the query location to its nearest network node."""
        return self.network.nearest_node(query.location)

    def object_node(self, obj: SpatialObject) -> int:
        return self.dataset.node_of[obj.oid]

    def object_distance(self, a: SpatialObject, b: SpatialObject) -> float:
        return self.network.distance(self.object_node(a), self.object_node(b))

    def distances_from_node(self, node: int) -> Dict[int, float]:
        return self.network.shortest_paths_from(node)

    def objects_on(self, node: int) -> List[SpatialObject]:
        return self._objects_by_node.get(node, [])

    # -- cost evaluation under the network metric ----------------------------

    def evaluate(
        self, cost: CostFunction, query_node: int, objects: Sequence[SpatialObject]
    ) -> float:
        """``cost`` evaluated with shortest-path distances."""
        if not objects:
            raise InvalidParameterError("cost of an empty set is undefined")
        from_query = self.distances_from_node(query_node)
        qdists = [from_query.get(self.object_node(o), math.inf) for o in objects]
        pairwise = 0.0
        for i in range(len(objects)):
            from_i = self.distances_from_node(self.object_node(objects[i]))
            for j in range(i + 1, len(objects)):
                d = from_i.get(self.object_node(objects[j]), math.inf)
                if d > pairwise:
                    pairwise = d
        return cost.combine(cost.query_aggregate.apply(qdists), pairwise)


class _NetworkAlgorithm:
    """Base plumbing for the network solvers."""

    name = "network"
    exact = False

    def __init__(self, context: NetworkContext, cost: CostFunction):
        self.context = context
        self.cost = cost
        self.counters: Dict[str, int] = {}
        #: Optional cooperative-cancellation hook (see repro.exec.Budget);
        #: attached per attempt by the resilient executor.
        self.budget = None

    def _check_feasible(self, query: Query) -> None:
        missing = self.context.dataset.missing_keywords(query.keywords)
        if missing:
            raise InfeasibleQueryError(missing)

    def _reset_counters(self) -> None:
        self.counters = {}

    def _bump(self, counter: str, amount: int = 1) -> None:
        self.counters[counter] = self.counters.get(counter, 0) + amount
        if self.budget is not None:
            self.budget.tick(amount, counters=self.counters)

    def _checkpoint(self) -> None:
        """Probe the deadline without charging work (for coarse loops)."""
        if self.budget is not None:
            self.budget.checkpoint(counters=self.counters)

    def _result(self, objects, cost_value: float) -> CoSKQResult:
        return CoSKQResult.of(objects, cost_value, self.name, counters=dict(self.counters))

    def _nn_set(self, query: Query, query_node: int) -> Tuple[List[SpatialObject], float]:
        """``N(q)`` by one lazy expansion; returns (objects, d_f)."""
        uncovered = set(query.keywords)
        chosen: Dict[int, SpatialObject] = {}
        d_f = 0.0
        for dist, node in self.context.network.expansion_from(query_node):
            self._checkpoint()
            for obj in self.context.objects_on(node):
                useful = obj.keywords & uncovered
                if useful:
                    chosen[obj.oid] = obj
                    uncovered -= useful
                    d_f = max(d_f, dist)
            if not uncovered:
                break
        if uncovered:
            raise InfeasibleQueryError(uncovered)
        ordered = sorted(chosen.values(), key=lambda o: o.oid)
        return ordered, d_f


class NetworkNNSetAlgorithm(_NetworkAlgorithm):
    """``N(q)`` under network distance (baseline approximation)."""

    name = "network-nn-set"

    def solve(
        self, query: Query, initial_upper_bound: Optional[float] = None
    ) -> CoSKQResult:
        # ``initial_upper_bound`` is accepted for interface uniformity
        # and ignored: N(q) is a fixed construction, not a search.
        self._reset_counters()
        self._check_feasible(query)
        query_node = self.context.query_node(query)
        objects, _ = self._nn_set(query, query_node)
        return self._result(objects, self.context.evaluate(self.cost, query_node, objects))


class NetworkGreedyAppro(_NetworkAlgorithm):
    """Owner-driven approximation under network distance."""

    name = "network-greedy"

    def solve(
        self, query: Query, initial_upper_bound: Optional[float] = None
    ) -> CoSKQResult:
        # ``initial_upper_bound`` is accepted for interface uniformity
        # and ignored (approximation; see CoSKQAlgorithm.solve).
        self._reset_counters()
        self._check_feasible(query)
        query_node = self.context.query_node(query)
        best, d_f = self._nn_set(query, query_node)
        best_cost = self.context.evaluate(self.cost, query_node, best)

        # Owner candidates stream in ascending network distance for free:
        # the Dijkstra expansion from the query node IS that order.
        for dist, node in self.context.network.expansion_from(query_node):
            self._checkpoint()
            if self.cost.combine(dist, 0.0) >= best_cost:
                break
            if dist < d_f:
                continue
            for owner in self.context.objects_on(node):
                if owner.keywords.isdisjoint(query.keywords):
                    continue
                self._bump("owners_tried")
                candidate = self._complete(query, query_node, owner, dist, best_cost)
                if candidate is None:
                    continue
                cost_value = self.context.evaluate(self.cost, query_node, candidate)
                if cost_value < best_cost:
                    best_cost = cost_value
                    best = candidate
        return self._result(best, best_cost)

    def _complete(
        self,
        query: Query,
        query_node: int,
        owner: SpatialObject,
        owner_dist: float,
        cost_bound: float,
    ) -> Optional[List[SpatialObject]]:
        """Greedy nearest-to-owner completion within the query disk."""
        uncovered = set(query.keywords - owner.keywords)
        if not uncovered:
            return [owner]
        from_query = self.context.distances_from_node(query_node)
        chosen = [owner]
        for dist, node in self.context.network.expansion_from(
            self.context.object_node(owner)
        ):
            self._checkpoint()
            if self.cost.combine(owner_dist, dist) >= cost_bound:
                return None  # completion already prices this owner out
            for obj in self.context.objects_on(node):
                if from_query.get(node, math.inf) > owner_dist:
                    continue  # owner must stay the farthest member
                useful = obj.keywords & uncovered
                if not useful:
                    continue
                chosen.append(obj)
                uncovered -= useful
                if not uncovered:
                    return chosen
        return None


class NetworkBnBExact(_NetworkAlgorithm):
    """Exact network CoSKQ by best-first branch-and-bound over covers."""

    name = "network-bnb-exact"
    exact = True
    max_expansions = 500_000

    def solve(
        self, query: Query, initial_upper_bound: Optional[float] = None
    ) -> CoSKQResult:
        self._reset_counters()
        self._check_feasible(query)
        if self.cost.query_aggregate is QueryAggregate.MIN:
            raise InvalidParameterError(
                "network exact search supports monotone costs (SUM/MAX)"
            )
        context = self.context
        query_node = context.query_node(query)
        incumbent, _ = self._nn_set(query, query_node)
        incumbent_cost = context.evaluate(self.cost, query_node, incumbent)
        # Achieved incumbent and pruning bound tracked separately, like
        # the Euclidean exact solvers: the slacked external bound is only
        # ever a cutoff, never a result.
        bound = incumbent_cost
        if initial_upper_bound is not None:
            bound = min(bound, prune_cutoff(initial_upper_bound))

        relevant = context.dataset.relevant_objects(query.keywords)
        from_query = context.distances_from_node(query_node)
        qdist = {
            o.oid: from_query.get(context.object_node(o), math.inf) for o in relevant
        }
        relevant = [o for o in relevant if math.isfinite(qdist[o.oid])]
        by_keyword: Dict[int, List[SpatialObject]] = {t: [] for t in query.keywords}
        for obj in relevant:
            for t in obj.keywords & query.keywords:
                by_keyword[t].append(obj)
        for t, lst in by_keyword.items():
            if not lst:
                raise InfeasibleQueryError([t])
            lst.sort(key=lambda o: (qdist[o.oid], o.oid))
        nn_dist = {t: qdist[by_keyword[t][0].oid] for t in query.keywords}

        counter = itertools.count()
        heap: List[Tuple[float, int, tuple, FrozenSet[int], float, float, float]] = [
            (0.0, next(counter), (), frozenset(), 0.0, 0.0, 0.0)
        ]
        expansions = 0
        while heap:
            self._checkpoint()
            lb, _, chosen, covered, qsum, qmax, diam = heapq.heappop(heap)
            if lb >= bound:
                break
            if covered >= query.keywords:
                candidate = list(chosen)
                cost_value = context.evaluate(self.cost, query_node, candidate)
                if cost_value < incumbent_cost:
                    incumbent_cost = cost_value
                    incumbent = candidate
                    if incumbent_cost < bound:
                        bound = incumbent_cost
                continue
            expansions += 1
            self._bump("states_expanded")
            if expansions > self.max_expansions:
                raise BudgetExceededError(
                    "states_expanded",
                    self.max_expansions,
                    expansions,
                    counters=self.counters,
                )
            branch = min(
                query.keywords - covered, key=lambda t: (len(by_keyword[t]), t)
            )
            chosen_ids = {o.oid for o in chosen}
            for obj in by_keyword[branch]:
                if obj.oid in chosen_ids:
                    continue
                d = qdist[obj.oid]
                new_diam = diam
                for member in chosen:
                    pair = context.object_distance(obj, member)
                    if pair > new_diam:
                        new_diam = pair
                new_qsum = qsum + d
                new_qmax = max(qmax, d)
                new_covered = covered | (obj.keywords & query.keywords)
                uncovered = query.keywords - new_covered
                pending = max((nn_dist[t] for t in uncovered), default=0.0)
                if self.cost.query_aggregate is QueryAggregate.SUM:
                    q_bound = new_qsum + pending
                else:
                    q_bound = max(new_qmax, pending)
                child_lb = self.cost.combine(q_bound, new_diam)
                if child_lb < bound:
                    heapq.heappush(
                        heap,
                        (
                            child_lb,
                            next(counter),
                            chosen + (obj,),
                            new_covered,
                            new_qsum,
                            new_qmax,
                            new_diam,
                        ),
                    )
        return self._result(incumbent, incumbent_cost)
