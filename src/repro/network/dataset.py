"""Geo-textual objects living on a road network.

A :class:`NetworkDataset` pairs a :class:`RoadNetwork` with objects
attached to its nodes.  Object locations are the node coordinates (so all
Euclidean tooling still works for visualization), but the CoSKQ
algorithms in :mod:`repro.network.algorithms` measure everything with
shortest-path distances.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, List, Sequence, Tuple

from repro.data.zipf import ZipfSampler
from repro.errors import InvalidParameterError
from repro.model.dataset import Dataset
from repro.model.objects import SpatialObject
from repro.model.vocabulary import Vocabulary
from repro.network.graph import RoadNetwork
from repro.utils.rng import substream

__all__ = ["NetworkDataset", "random_network_dataset"]


class NetworkDataset:
    """Objects placed on road-network nodes."""

    def __init__(
        self,
        network: RoadNetwork,
        objects: Sequence[SpatialObject],
        node_of: Dict[int, int],
        vocabulary: Vocabulary,
        name: str = "network-dataset",
    ):
        for obj in objects:
            if obj.oid not in node_of:
                raise InvalidParameterError(
                    "object %d has no network node" % obj.oid
                )
        self.network = network
        self.objects: List[SpatialObject] = list(objects)
        self.node_of = dict(node_of)
        self.vocabulary = vocabulary
        self.name = name

    def __len__(self) -> int:
        return len(self.objects)

    def __iter__(self):
        return iter(self.objects)

    def as_euclidean_dataset(self) -> Dataset:
        """The same objects as a plain (Euclidean) dataset.

        Used to compare network CoSKQ against its Euclidean counterpart
        on identical data.
        """
        return Dataset(self.objects, self.vocabulary, name=self.name + "-euclidean")

    def objects_on(self, node: int) -> List[SpatialObject]:
        return [o for o in self.objects if self.node_of[o.oid] == node]

    def relevant_objects(self, keywords: FrozenSet[int]) -> List[SpatialObject]:
        return [o for o in self.objects if not o.keywords.isdisjoint(keywords)]

    def missing_keywords(self, keywords: Iterable[int]) -> FrozenSet[int]:
        present: set[int] = set()
        for obj in self.objects:
            present.update(obj.keywords)
        return frozenset(k for k in keywords if k not in present)


def random_network_dataset(
    rows: int = 20,
    cols: int = 20,
    num_objects: int = 300,
    vocabulary_size: int = 30,
    mean_keywords: float = 2.5,
    seed: int = 0,
) -> NetworkDataset:
    """A perturbed-grid network populated with Zipf-keyword objects."""
    from repro.network.graph import grid_network

    network = grid_network(rows, cols, seed=seed)
    rng = substream(seed, "network-objects")
    vocabulary = Vocabulary("w%04d" % i for i in range(vocabulary_size))
    sampler = ZipfSampler(vocabulary_size, 1.0)
    nodes = sorted(network.nodes())
    objects: List[SpatialObject] = []
    node_of: Dict[int, int] = {}
    for oid in range(num_objects):
        node = rng.choice(nodes)
        count = max(1, min(vocabulary_size, int(rng.expovariate(1.0 / mean_keywords)) + 1))
        keywords = frozenset(sampler.sample_distinct(rng, count))
        objects.append(SpatialObject(oid, network.location(node), keywords))
        node_of[oid] = node
    return NetworkDataset(
        network, objects, node_of, vocabulary, name="grid%dx%d" % (rows, cols)
    )
