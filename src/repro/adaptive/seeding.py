"""The shared appro-seeding API.

One module owns the pairing "which cheap approximation soundly produces
an ``initial_upper_bound`` for which exact search":

- by *registry name* (:data:`APPRO_COUNTERPARTS` /
  :func:`appro_counterpart`) — the paper's own pairing, used by the CLI
  and the planner when the caller thinks in registered solver names;
- by *cost structure* (:func:`make_seeder`) — used by the sharded
  scatter-gather engine and anywhere else only the cost function is in
  hand.

Soundness is inherited from the ``initial_upper_bound`` contract
(:meth:`repro.algorithms.base.CoSKQAlgorithm.solve`): every seeder
returned here builds a *feasible* set for the query and reports its true
cost under the target cost function, so its cost is a valid upper bound
on the optimum and the seeded exact search returns a bit-identical cost.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.algorithms.base import CoSKQAlgorithm, SearchContext
from repro.algorithms.owner_appro import OwnerRingApproximation
from repro.algorithms.sum_algorithms import SumGreedy
from repro.cost.base import CostFunction, QueryAggregate
from repro.cost.functions import SumCost
from repro.model.query import Query

__all__ = [
    "APPRO_COUNTERPARTS",
    "SeedOutcome",
    "appro_counterpart",
    "compute_seed",
    "make_seeder",
]

#: Registered exact solver → the registered approximation that seeds it.
#: Only solvers whose answer a feasible-cost bound can safely tighten are
#: listed: top-k is absent (a bound on the best set says nothing about
#: the k-th) and so is the brute-force oracle (kept exhaustive so the
#: differential tests can distrust everyone else's pruning).
APPRO_COUNTERPARTS: Dict[str, str] = {
    "maxsum-exact": "maxsum-appro",
    "dia-exact": "dia-appro",
    "sum-exact": "sum-greedy",
    "cao-exact": "unified-appro",
    "bnb-exact": "unified-appro",
    "unified-exact": "unified-appro",
}


def appro_counterpart(exact_name: str) -> Optional[str]:
    """The registered appro counterpart of an exact solver name (or None)."""
    return APPRO_COUNTERPARTS.get(exact_name)


@dataclass(frozen=True)
class SeedOutcome:
    """What one seeding pass produced.

    ``cost`` is a feasible upper bound on the optimum — the value to pass
    as ``initial_upper_bound``; ``objects`` is the feasible set realizing
    it (kept so a deadline-starved planner can degrade to the seed
    itself); ``counters`` is the seeder's work tally.
    """

    seeder_name: str
    cost: float
    objects: Tuple
    counters: Dict[str, int]


def make_seeder(
    context: SearchContext, cost: CostFunction
) -> Optional[CoSKQAlgorithm]:
    """A cheap approximation suited to seeding an exact search of ``cost``.

    Dispatch is structural, mirroring :func:`make_exact_solver`:

    - pure Sum cost → the weighted-set-cover greedy;
    - any other non-MIN aggregate → the owner-ring approximation (its
      owner-distance stopping rule needs the query component of a set
      containing the owner to be at least the owner's distance, true for
      both MAX and SUM aggregates);
    - MIN aggregates → ``None``: no cheap pass with a monotone owner
      bound exists, so those searches run unseeded.
    """
    if cost.query_aggregate is QueryAggregate.MIN:
        return None
    if isinstance(cost, SumCost):
        return SumGreedy(context, cost)
    return OwnerRingApproximation(context, cost)


def compute_seed(
    context: SearchContext,
    cost: CostFunction,
    query: Query,
    budget=None,
) -> Optional[SeedOutcome]:
    """Run the structural seeder once; ``None`` when no seeder applies.

    ``budget`` (duck-typed to :class:`repro.exec.Budget`) is attached to
    the seeder so a deadline covers the seeding pass too.
    """
    seeder = make_seeder(context, cost)
    if seeder is None:
        return None
    seeder.budget = budget
    result = seeder.solve(query)
    return SeedOutcome(
        seeder_name=seeder.name,
        cost=result.cost,
        objects=tuple(result.objects),
        counters=dict(result.counters),
    )
