"""The ``coskq-adaptive`` command line: collect → train → eval.

Usage::

    coskq-adaptive collect --demo --queries 32 --out records.jsonl
    coskq-adaptive collect data.tsv --queries 64 --num-keywords 6 \
        --algorithm maxsum-exact --out records.jsonl
    coskq-adaptive train records.jsonl --out model.json --hard-ms 50
    coskq-adaptive eval records.jsonl --model model.json

``collect`` runs a generated workload (or one derived from a dataset
file) through a solver and writes JSONL training records; ``train``
fits the stdlib logistic :class:`~repro.adaptive.model.HardnessModel`
and writes it as JSON; ``eval`` reports holdout accuracy/precision/
recall of a model against a records file.  The trained model plugs into
``coskq-query --adaptive --model model.json`` and
``coskq-serve --adaptive``.

Exit codes: 0 on success, 1 on library/I-O errors, 2 on usage errors —
the same convention as every other console script in the package.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

from repro.adaptive.model import HardnessModel
from repro.adaptive.train import (
    collect_records,
    evaluate_model,
    load_records,
    save_records,
    train_from_records,
)
from repro.algorithms.base import SearchContext
from repro.algorithms.registry import ALGORITHM_NAMES
from repro.cost.functions import ALL_COSTS, cost_by_name
from repro.data.queries import QueryWorkload
from repro.errors import CoSKQError
from repro.model.dataset import Dataset

__all__ = ["main"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="coskq-adaptive",
        description="Collect training records and fit the query-hardness model.",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    collect = commands.add_parser(
        "collect", help="run a workload and write JSONL training records"
    )
    collect.add_argument("dataset", nargs="?", help="dataset file (text format)")
    collect.add_argument(
        "--demo",
        action="store_true",
        help="use a generated demo dataset instead of a file",
    )
    collect.add_argument(
        "--queries", type=int, default=32, metavar="N", help="workload size"
    )
    collect.add_argument(
        "--num-keywords",
        type=int,
        default=4,
        metavar="K",
        help="keywords per generated query (default: 4)",
    )
    collect.add_argument(
        "--seed", type=int, default=0, help="workload RNG seed (default: 0)"
    )
    collect.add_argument(
        "--algorithm",
        default="maxsum-exact",
        choices=sorted(ALGORITHM_NAMES),
        help="solver to measure (default: maxsum-exact)",
    )
    collect.add_argument(
        "--cost",
        default=None,
        choices=sorted(ALL_COSTS),
        help="override the solver's default cost function",
    )
    collect.add_argument(
        "--out", required=True, metavar="FILE", help="records file to write (JSONL)"
    )

    train = commands.add_parser(
        "train", help="fit the hardness model from a records file"
    )
    train.add_argument("records", help="JSONL records from `collect`")
    train.add_argument(
        "--out", required=True, metavar="FILE", help="model file to write (JSON)"
    )
    train.add_argument(
        "--hard-ms",
        type=float,
        default=None,
        metavar="MS",
        help="latency above which a query is labeled hard (default: median)",
    )
    train.add_argument(
        "--epochs", type=int, default=400, help="gradient-descent epochs"
    )

    evaluate = commands.add_parser(
        "eval", help="report model accuracy against a records file"
    )
    evaluate.add_argument("records", help="JSONL records from `collect`")
    evaluate.add_argument(
        "--model", required=True, metavar="FILE", help="model JSON from `train`"
    )
    evaluate.add_argument(
        "--hard-ms",
        type=float,
        default=None,
        metavar="MS",
        help="label threshold for the evaluation (default: median)",
    )
    return parser


def _cmd_collect(args: argparse.Namespace) -> int:
    if args.demo == (args.dataset is not None):
        print("provide a dataset file or --demo (not both)", file=sys.stderr)
        return 2
    if args.queries < 1 or args.num_keywords < 1:  # repro: noqa(R9) — CLI ints, not keyword sets
        print("--queries and --num-keywords must be >= 1", file=sys.stderr)
        return 2
    if args.demo:
        from repro.data.generators import hotel_like

        dataset = hotel_like(scale=0.1, seed=0)
    else:
        dataset = Dataset.load(args.dataset)
    context = SearchContext(dataset)
    workload = QueryWorkload(
        dataset, num_keywords=args.num_keywords, seed=args.seed
    )
    queries = workload.generate(args.queries)
    cost = cost_by_name(args.cost) if args.cost else None
    records = collect_records(
        context, queries, algorithm=args.algorithm, cost=cost
    )
    save_records(args.out, records)
    print(
        "collected %d records (%s on %s) -> %s"
        % (len(records), args.algorithm, dataset.name, args.out)
    )
    return 0


def _cmd_train(args: argparse.Namespace) -> int:
    records = load_records(args.records)
    model = train_from_records(
        records, hard_ms=args.hard_ms, epochs=args.epochs
    )
    with open(args.out, "w", encoding="utf-8") as handle:
        handle.write(model.to_json())
        handle.write("\n")
    print(
        "trained on %d records (%d hard, hard_ms=%.4g, loss=%.4g) -> %s"
        % (
            model.meta["samples"],
            model.meta["positives"],
            model.meta["hard_ms"],
            model.meta["final_loss"],
            args.out,
        )
    )
    return 0


def _cmd_eval(args: argparse.Namespace) -> int:
    records = load_records(args.records)
    with open(args.model, "r", encoding="utf-8") as handle:
        model = HardnessModel.from_json(handle.read())
    metrics = evaluate_model(model, records, hard_ms=args.hard_ms)
    print(json.dumps(metrics, indent=2, sort_keys=True))
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        if args.command == "collect":
            return _cmd_collect(args)
        if args.command == "train":
            return _cmd_train(args)
        return _cmd_eval(args)
    except CoSKQError as exc:
        print("error: %s" % exc, file=sys.stderr)
        return 1
    except (OSError, ValueError, KeyError) as exc:
        print("error: %s" % exc, file=sys.stderr)
        return 1


if __name__ == "__main__":
    raise SystemExit(main())
