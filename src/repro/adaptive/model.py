"""A stdlib-only query-hardness predictor.

:class:`HardnessModel` is logistic regression over the
:class:`~repro.adaptive.features.QueryFeatures` vector: features are
standardized with training-set means/scales, combined linearly, and
squashed to the probability that an exact solve blows its latency
target.  Everything — training (batch gradient descent with L2),
serialization (plain JSON), inference — is ``math`` + ``json``, so the
predictor loads anywhere the library does, with no third-party
dependencies.

An untrained deployment uses :meth:`HardnessModel.default`, a heuristic
prior encoding what every CoSKQ running-time figure shows: hardness
grows with the keyword count and the relevant universe, and shrinks when
the anchor spread is tight (the owner staircase is short).
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

from repro.adaptive.features import QueryFeatures
from repro.errors import InvalidParameterError

__all__ = ["FEATURE_NAMES", "HardnessModel"]

#: Model feature order — must match ``QueryFeatures.as_dict`` keys.
FEATURE_NAMES: Tuple[str, ...] = (
    "num_keywords",
    "relevant_universe",
    "min_selectivity",
    "max_selectivity",
    "mean_selectivity",
    "d_f",
    "d_n",
    "anchor_spread",
    "shard_fanout",
)

#: Serialization format tag; bump on incompatible layout changes.
FORMAT = "coskq-hardness-model/1"


def _sigmoid(z: float) -> float:
    # Branch on the sign so the exp argument is always non-positive:
    # no overflow for any finite z.
    if z >= 0.0:
        return 1.0 / (1.0 + math.exp(-z))
    e = math.exp(z)
    return e / (1.0 + e)


@dataclass
class HardnessModel:
    """Logistic ``P(hard)`` over standardized query features."""

    weights: Dict[str, float]
    bias: float = 0.0
    #: Per-feature (mean, scale) used to standardize inputs; scale is
    #: never zero (constant training columns get scale 1).
    standardize: Dict[str, Tuple[float, float]] = field(default_factory=dict)
    #: Decision threshold for :meth:`predict_hard`.
    threshold: float = 0.5
    #: Free-form provenance (training set size, loss, label rule, ...).
    meta: Dict[str, object] = field(default_factory=dict)

    def __post_init__(self) -> None:
        unknown = set(self.weights) - set(FEATURE_NAMES)
        if unknown:
            raise InvalidParameterError(
                "unknown hardness features %s; known: %s"
                % (sorted(unknown), list(FEATURE_NAMES))
            )

    # -- inference ----------------------------------------------------------

    def score(self, features: QueryFeatures) -> float:
        """The linear score ``w·x̃ + b`` (pre-sigmoid)."""
        values = features.as_dict()
        z = self.bias
        for name, weight in self.weights.items():
            x = float(values[name])
            mean, scale = self.standardize.get(name, (0.0, 1.0))
            z += weight * ((x - mean) / scale)
        return z

    def predict_proba(self, features: QueryFeatures) -> float:
        """``P(hard)`` in (0, 1)."""
        return _sigmoid(self.score(features))

    def predict_hard(self, features: QueryFeatures) -> bool:
        """Whether the query should be planned as hard."""
        return self.predict_proba(features) >= self.threshold

    # -- serialization ------------------------------------------------------

    def to_dict(self) -> Dict[str, object]:
        return {
            "format": FORMAT,
            "weights": dict(self.weights),
            "bias": self.bias,
            "standardize": {k: list(v) for k, v in self.standardize.items()},
            "threshold": self.threshold,
            "meta": dict(self.meta),
        }

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), indent=2, sort_keys=True)

    @staticmethod
    def from_dict(payload: Dict[str, object]) -> "HardnessModel":
        if payload.get("format") != FORMAT:
            raise InvalidParameterError(
                "not a %s payload (format=%r)" % (FORMAT, payload.get("format"))
            )
        return HardnessModel(
            weights={k: float(v) for k, v in payload["weights"].items()},
            bias=float(payload["bias"]),
            standardize={
                k: (float(v[0]), float(v[1]))
                for k, v in payload.get("standardize", {}).items()
            },
            threshold=float(payload.get("threshold", 0.5)),
            meta=dict(payload.get("meta", {})),
        )

    @staticmethod
    def from_json(text: str) -> "HardnessModel":
        return HardnessModel.from_dict(json.loads(text))

    # -- defaults and training ----------------------------------------------

    @staticmethod
    def default() -> "HardnessModel":
        """The heuristic prior used before any training data exists.

        Weights are on raw (unstandardized) features, scaled so typical
        workloads land on both sides of the threshold: ~9 keywords over
        a few hundred relevant objects scores hard, ~3 keywords over a
        few dozen scores easy.
        """
        return HardnessModel(
            weights={
                "num_keywords": 0.55,
                "relevant_universe": 0.004,
                "anchor_spread": 0.5,
            },
            bias=-4.0,
            meta={"source": "heuristic-default"},
        )

    @staticmethod
    def train(
        rows: Sequence[QueryFeatures],
        labels: Sequence[bool],
        epochs: int = 400,
        learning_rate: float = 0.5,
        l2: float = 1e-3,
        threshold: float = 0.5,
    ) -> "HardnessModel":
        """Fit by full-batch gradient descent on the logistic loss.

        Deterministic (no random init, fixed iteration order), so the
        same provenance records always train byte-identical models.
        """
        if len(rows) != len(labels):
            raise InvalidParameterError(
                "got %d feature rows but %d labels" % (len(rows), len(labels))
            )
        if not rows:
            raise InvalidParameterError("cannot train on an empty sample")
        names = FEATURE_NAMES
        matrix: List[List[float]] = [
            [float(r.as_dict()[name]) for name in names] for r in rows
        ]
        n = len(matrix)
        # Standardize: zero-mean, unit mean-absolute-deviation (robust
        # enough here and keeps the arithmetic exactly reproducible).
        standardize: Dict[str, Tuple[float, float]] = {}
        for j, name in enumerate(names):
            column = [row[j] for row in matrix]
            mean = sum(column) / n
            spread = sum(abs(x - mean) for x in column) / n
            scale = spread if spread > 0.0 else 1.0
            standardize[name] = (mean, scale)
            for row in matrix:
                row[j] = (row[j] - mean) / scale
        y = [1.0 if flag else 0.0 for flag in labels]
        w = [0.0] * len(names)
        b = 0.0
        loss = float("nan")
        for _ in range(epochs):
            grad_w = [l2 * wj for wj in w]
            grad_b = 0.0
            loss = 0.0
            for row, target in zip(matrix, y):
                z = b + sum(wj * xj for wj, xj in zip(w, row))
                p = _sigmoid(z)
                err = p - target
                for j, xj in enumerate(row):
                    grad_w[j] += err * xj / n
                grad_b += err / n
                # Clamped log-loss, for reporting only.
                p_safe = min(max(p, 1e-12), 1.0 - 1e-12)
                loss -= (
                    target * math.log(p_safe)
                    + (1.0 - target) * math.log(1.0 - p_safe)
                ) / n
            w = [wj - learning_rate * gj for wj, gj in zip(w, grad_w)]
            b -= learning_rate * grad_b
        return HardnessModel(
            weights={name: wj for name, wj in zip(names, w)},
            bias=b,
            standardize=standardize,
            threshold=threshold,
            meta={
                "source": "trained",
                "samples": n,
                "positives": int(sum(y)),
                "epochs": epochs,
                "learning_rate": learning_rate,
                "l2": l2,
                "final_loss": loss,
            },
        )
