"""Cheap per-query features for the adaptive planner.

:func:`extract_features` reads only structures the engine has already
built — posting-list lengths from the inverted index, the per-keyword
nearest-neighbor distances behind ``N(q)``, shard summaries when a
:class:`~repro.shard.index.ShardedIndex` is active — so extraction costs
a handful of index probes per query, no allocation beyond the frozen
:class:`QueryFeatures` itself.

The features deliberately mirror what drives the exact search's running
time (docs/ADAPTIVE.md §2): keyword count bounds the cover-enumeration
branching, selectivities size the candidate universe, the anchor spread
``d_f − d_n`` measures how staggered the owner staircase is, and the
shard fan-out scales the scatter width.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.algorithms.base import SearchContext
from repro.index.signatures import mask_of, overlaps
from repro.model.query import Query

__all__ = ["QueryFeatures", "extract_features"]


@dataclass(frozen=True)
class QueryFeatures:
    """One query's planning signature.

    Selectivities are document frequencies (posting-list lengths) of the
    query keywords; ``relevant_universe`` is the size of the paper's
    relevant-object set ``O_q`` (distinct carriers of any query
    keyword); ``d_f``/``d_n`` are the farthest/nearest per-keyword
    nearest-neighbor distances behind ``N(q)`` and ``anchor_spread``
    their difference; ``shard_fanout`` counts the shards the mask rule
    keeps (1 over an unsharded index).
    """

    num_keywords: int
    relevant_universe: int
    min_selectivity: int
    max_selectivity: int
    mean_selectivity: float
    d_f: float
    d_n: float
    anchor_spread: float
    shard_fanout: int

    def as_dict(self) -> Dict[str, float]:
        """A flat JSON-ready mapping (insertion order = field order)."""
        return {
            "num_keywords": self.num_keywords,
            "relevant_universe": self.relevant_universe,
            "min_selectivity": self.min_selectivity,
            "max_selectivity": self.max_selectivity,
            "mean_selectivity": self.mean_selectivity,
            "d_f": self.d_f,
            "d_n": self.d_n,
            "anchor_spread": self.anchor_spread,
            "shard_fanout": self.shard_fanout,
        }

    @staticmethod
    def from_dict(payload: Dict[str, float]) -> "QueryFeatures":
        return QueryFeatures(
            num_keywords=int(payload["num_keywords"]),
            relevant_universe=int(payload["relevant_universe"]),
            min_selectivity=int(payload["min_selectivity"]),
            max_selectivity=int(payload["max_selectivity"]),
            mean_selectivity=float(payload["mean_selectivity"]),
            d_f=float(payload["d_f"]),
            d_n=float(payload["d_n"]),
            anchor_spread=float(payload["anchor_spread"]),
            shard_fanout=int(payload["shard_fanout"]),
        )


def extract_features(context: SearchContext, query: Query) -> QueryFeatures:
    """Extract :class:`QueryFeatures` for ``query`` over ``context``.

    Raises :class:`~repro.errors.InfeasibleQueryError` (through the
    ``N(q)`` computation) exactly where a solver would, so the planner
    never plans an uncoverable query.
    """
    inverted = context.inverted
    frequencies = [inverted.document_frequency(t) for t in query.keywords]
    # Distinct carriers without materializing O_q: walk posting lists of
    # oids (ints), not objects.
    seen: set = set()
    for t in query.keywords:
        seen.update(inverted.posting_list(t))

    nn = context.nn_set(query)
    d_n = min(dist for dist, _ in nn.by_keyword.values())

    index = context.index
    shards = getattr(index, "shards", None)
    if shards is None:
        fanout = 1
    else:
        q_mask = mask_of(query.keywords)
        fanout = sum(
            1 for shard in shards if overlaps(q_mask, shard.summary.kw_mask)
        )
    return QueryFeatures(
        num_keywords=len(query.keywords),
        relevant_universe=len(seen),
        min_selectivity=min(frequencies),
        max_selectivity=max(frequencies),
        mean_selectivity=sum(frequencies) / len(frequencies),
        d_f=nn.d_f,
        d_n=d_n,
        anchor_spread=nn.d_f - d_n,
        shard_fanout=fanout,
    )
