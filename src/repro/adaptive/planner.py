"""The feature-driven query planner.

:class:`AdaptivePlanner` is a duck-typed solver (``solve`` + ``name``)
that plans each query before running it:

1. extract :class:`~repro.adaptive.features.QueryFeatures`;
2. score them with a :class:`~repro.adaptive.model.HardnessModel`;
3. pick the execution shape: queries predicted *hard* run the appro
   counterpart first and the exact solver seeded with its cost (one
   fallback stage, sharing one attempt budget with an explicit split);
   queries predicted *easy* run the exact solver directly — the exact
   search's own early owners tighten the incumbent fast enough there
   that a seeding pass is pure overhead;
4. execute through a :class:`~repro.exec.executor.ResilientExecutor`
   under the configured :class:`~repro.exec.policy.ExecutionPolicy`, so
   deadlines, budgets, retries and degradation keep working exactly as
   for any other chain;
5. stamp the decision into the result's
   :class:`~repro.exec.fallback.ExecutionProvenance` (``planner`` slot).

Seeding never changes answers — only work — by the
``initial_upper_bound`` contract (docs/ADAPTIVE.md §3).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, Optional

from repro.adaptive.features import QueryFeatures, extract_features
from repro.adaptive.model import HardnessModel
from repro.adaptive.seeding import appro_counterpart
from repro.algorithms.base import SearchContext
from repro.algorithms.registry import make_algorithm
from repro.cost.base import CostFunction
from repro.errors import SearchAbortedError
from repro.exec.clock import Clock
from repro.exec.executor import ResilientExecutor
from repro.exec.fallback import ExecutionProvenance, FallbackChain, stage_ratio
from repro.exec.policy import Budget, ExecutionPolicy
from repro.model.query import Query
from repro.model.result import CoSKQResult

__all__ = ["AdaptivePlanner", "PlanDecision", "SeededStage"]


@dataclass(frozen=True)
class PlanDecision:
    """What the planner decided for one query, before running it.

    ``seed_cost`` is filled in after execution (None when the plan was
    unseeded or the seeding pass was starved out by its budget split).
    """

    solver: str
    seeder: Optional[str]
    hardness: float
    hard: bool
    features: QueryFeatures
    seed_cost: Optional[float] = None

    def as_dict(self) -> Dict[str, object]:
        """The JSON-ready record stamped into execution provenance."""
        return {
            "solver": self.solver,
            "seeder": self.seeder,
            "hardness": self.hardness,
            "hard": self.hard,
            "seed_cost": self.seed_cost,
            "features": self.features.as_dict(),
        }


class SeededStage:
    """One fallback stage: appro counterpart first, exact seeded with it.

    Duck-types the solver interface so it drops into a
    :class:`FallbackChain`.  The executor-attached budget is split: when
    it carries a work limit, the seeding pass runs under a fresh
    sub-budget of ``seed_fraction`` of that limit (same deadline), so a
    pathological seeder cannot starve the exact pass; a seeding pass
    that blows its split is swallowed and the exact solver simply runs
    unseeded.  The exact pass spends from the attempt budget itself.
    """

    def __init__(self, appro, exact_solver, seed_fraction: float = 0.25):
        self._appro = appro
        self._exact = exact_solver
        self.seed_fraction = seed_fraction
        self.name = "seeded[%s<-%s]" % (exact_solver.name, appro.name)
        #: Exactness/ratio mirror the exact pass — the stage's answer is
        #: the exact solver's answer (the seed only prunes).
        self.exact = getattr(exact_solver, "exact", False)
        self.ratio = getattr(exact_solver, "ratio", None)
        self.ratio_cost = getattr(exact_solver, "ratio_cost", None)
        #: Seed cost of the most recent solve (None when starved).
        self.last_seed_cost: Optional[float] = None
        self._budget = None

    @property
    def budget(self):
        return self._budget

    @budget.setter
    def budget(self, value) -> None:
        self._budget = value
        self._exact.budget = value

    def _seed_budget(self):
        budget = self._budget
        if budget is None or budget.work_limit is None:
            return budget
        return Budget(
            work_limit=max(1, int(budget.work_limit * self.seed_fraction)),
            deadline_at=budget.deadline_at,
            clock=budget.clock,
            started=budget.started,
            checkpoint_interval=budget.checkpoint_interval,
        )

    def solve(
        self, query: Query, initial_upper_bound: Optional[float] = None
    ) -> CoSKQResult:
        self.last_seed_cost = None
        self._appro.budget = self._seed_budget()
        try:
            seeded = self._appro.solve(query)
            self.last_seed_cost = seeded.cost
        except SearchAbortedError:
            pass  # starved seeding pass: run the exact search unseeded
        finally:
            self._appro.budget = None
        bound = initial_upper_bound
        if self.last_seed_cost is not None:
            bound = (
                self.last_seed_cost
                if bound is None
                else min(bound, self.last_seed_cost)
            )
        if bound is None:
            result = self._exact.solve(query)
        else:
            result = self._exact.solve(query, initial_upper_bound=bound)
        merged = dict(result.counters)
        if self.last_seed_cost is not None:
            merged["seed_runs"] = merged.get("seed_runs", 0) + 1
            for counter, amount in self._appro.counters.items():
                key = "seed_" + counter
                merged[key] = merged.get(key, 0) + amount
        return CoSKQResult.of(
            result.objects, result.cost, result.algorithm, counters=merged
        )

    def __repr__(self) -> str:
        return "SeededStage(%s)" % self.name


class AdaptivePlanner:
    """Plan-then-execute wrapper around a registered exact solver.

    ``algorithm`` names the strongest solver wanted (usually exact);
    its appro counterpart (from :data:`APPRO_COUNTERPARTS`) becomes both
    the seeder and the degradation stage.  ``last_resort`` (default the
    always-cheap ``N(q)``) terminates both chains, preserving the
    resilient executor's always-answer guarantee.
    """

    def __init__(
        self,
        context: SearchContext,
        algorithm: str = "maxsum-exact",
        cost: Optional[CostFunction] = None,
        model: Optional[HardnessModel] = None,
        policy: Optional[ExecutionPolicy] = None,
        clock: Optional[Clock] = None,
        seed_fraction: float = 0.25,
        last_resort: str = "nn-set",
    ):
        self.context = context
        self.algorithm = algorithm
        self.model = model if model is not None else HardnessModel.default()
        self.policy = policy if policy is not None else ExecutionPolicy()
        strongest = make_algorithm(algorithm, context, cost)
        self.cost = strongest.cost
        self.name = "adaptive[%s]" % algorithm

        seeder_name = appro_counterpart(algorithm)
        self.seeder_name = seeder_name
        easy_stages = [strongest]
        if seeder_name is not None:
            appro_for_seed = make_algorithm(seeder_name, context, self.cost)
            exact_for_seed = make_algorithm(algorithm, context, cost)
            seeded = SeededStage(
                appro_for_seed, exact_for_seed, seed_fraction=seed_fraction
            )
            self._seeded_stage: Optional[SeededStage] = seeded
            hard_stages = [seeded, make_algorithm(seeder_name, context, self.cost)]
            easy_stages.append(make_algorithm(seeder_name, context, self.cost))
        else:
            self._seeded_stage = None
            hard_stages = [strongest]
        if last_resort not in (algorithm, seeder_name):
            hard_stages.append(make_algorithm(last_resort, context, self.cost))
            easy_stages.append(make_algorithm(last_resort, context, self.cost))
        self._hard_executor = ResilientExecutor(
            FallbackChain(hard_stages), policy=self.policy, clock=clock
        )
        self._easy_executor = ResilientExecutor(
            FallbackChain(easy_stages), policy=self.policy, clock=clock
        )

    # -- planning -----------------------------------------------------------

    def plan(self, query: Query) -> PlanDecision:
        """Features + hardness → the execution shape for ``query``."""
        features = extract_features(self.context, query)
        hardness = self.model.predict_proba(features)
        hard = hardness >= self.model.threshold and self._seeded_stage is not None
        return PlanDecision(
            solver=self.algorithm,
            seeder=self.seeder_name if hard else None,
            hardness=hardness,
            hard=hard,
            features=features,
        )

    # -- execution ----------------------------------------------------------

    def solve(
        self, query: Query, initial_upper_bound: Optional[float] = None
    ) -> CoSKQResult:
        decision = self.plan(query)
        executor = self._hard_executor if decision.hard else self._easy_executor
        result = executor.solve(query, initial_upper_bound=initial_upper_bound)
        if decision.hard and self._seeded_stage is not None:
            decision = replace(
                decision, seed_cost=self._seeded_stage.last_seed_cost
            )
        provenance = result.provenance
        if isinstance(provenance, ExecutionProvenance):
            provenance = replace(provenance, planner=decision.as_dict())
        else:  # pragma: no cover - executor always stamps provenance
            provenance = ExecutionProvenance(
                answered_by=result.algorithm,
                degraded=False,
                guaranteed_ratio=stage_ratio(self),
                planner=decision.as_dict(),
            )
        return result.with_provenance(provenance)

    def __repr__(self) -> str:
        return "AdaptivePlanner(%s, model=%s)" % (
            self.algorithm,
            self.model.meta.get("source", "?"),
        )
