"""``python -m repro.adaptive`` — the CLI without the console script."""

from repro.adaptive.cli import main

if __name__ == "__main__":
    raise SystemExit(main())
