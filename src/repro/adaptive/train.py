"""Offline training loop for the hardness predictor.

The loop is collect → label → fit:

1. **collect** — run a query workload through a solver and record, per
   query, the extracted :class:`QueryFeatures` next to what actually
   happened (wall-clock, work counters, answering solver).  Records are
   plain JSONL, one query per line, so they append across runs and
   across machines.
2. **label** — a query is *hard* when its exact solve exceeded a
   latency threshold (``--hard-ms``, default the collected median — the
   planner's job is to split the workload, so the median is the natural
   pivot when no SLO is given).
3. **fit** — :meth:`HardnessModel.train` (stdlib logistic regression),
   serialized as JSON for ``coskq-query --adaptive --model``.

Everything here is deterministic given the records file, so retraining
is reproducible byte-for-byte.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.adaptive.features import QueryFeatures, extract_features
from repro.adaptive.model import HardnessModel
from repro.algorithms.base import SearchContext
from repro.algorithms.registry import make_algorithm
from repro.cost.base import CostFunction
from repro.errors import InvalidParameterError, SearchAbortedError
from repro.exec.clock import Clock, MonotonicClock
from repro.model.query import Query

__all__ = [
    "TrainingRecord",
    "collect_records",
    "label_records",
    "load_records",
    "save_records",
    "train_from_records",
    "evaluate_model",
]

#: Serialization format tag for record lines.
RECORD_FORMAT = "coskq-adaptive-record/1"


@dataclass(frozen=True)
class TrainingRecord:
    """One query's measured outcome, ready for labeling."""

    features: QueryFeatures
    solver: str
    elapsed_ms: float
    counters: Dict[str, int]
    aborted: bool = False

    def to_dict(self) -> Dict[str, object]:
        return {
            "format": RECORD_FORMAT,
            "features": self.features.as_dict(),
            "solver": self.solver,
            "elapsed_ms": self.elapsed_ms,
            "counters": dict(self.counters),
            "aborted": self.aborted,
        }

    @staticmethod
    def from_dict(payload: Dict[str, object]) -> "TrainingRecord":
        if payload.get("format") != RECORD_FORMAT:
            raise InvalidParameterError(
                "not a %s line (format=%r)" % (RECORD_FORMAT, payload.get("format"))
            )
        return TrainingRecord(
            features=QueryFeatures.from_dict(payload["features"]),
            solver=str(payload["solver"]),
            elapsed_ms=float(payload["elapsed_ms"]),
            counters={k: int(v) for k, v in payload.get("counters", {}).items()},
            aborted=bool(payload.get("aborted", False)),
        )


def collect_records(
    context: SearchContext,
    queries: Iterable[Query],
    algorithm: str = "maxsum-exact",
    cost: Optional[CostFunction] = None,
    clock: Optional[Clock] = None,
) -> List[TrainingRecord]:
    """Measure ``algorithm`` on every query, pairing features with time.

    An aborted solve (budget/deadline) still yields a record — flagged
    ``aborted`` and labeled hard unconditionally by
    :func:`label_records` (a search that had to be stopped is the
    definition of hard).  ``clock`` is injectable for tests.
    """
    clock = clock if clock is not None else MonotonicClock()
    solver = make_algorithm(algorithm, context, cost)
    records: List[TrainingRecord] = []
    for query in queries:
        features = extract_features(context, query)
        started = clock.now()
        try:
            result = solver.solve(query)
            counters = dict(result.counters)
            aborted = False
        except SearchAbortedError as err:
            counters = dict(err.counters)
            aborted = True
        elapsed_ms = (clock.now() - started) * 1000.0
        records.append(
            TrainingRecord(
                features=features,
                solver=algorithm,
                elapsed_ms=elapsed_ms,
                counters=counters,
                aborted=aborted,
            )
        )
    return records


def save_records(path: str, records: Sequence[TrainingRecord]) -> None:
    """Append-friendly JSONL (one record per line)."""
    with open(path, "w", encoding="utf-8") as handle:
        for record in records:
            handle.write(json.dumps(record.to_dict(), sort_keys=True))
            handle.write("\n")


def load_records(path: str) -> List[TrainingRecord]:
    records: List[TrainingRecord] = []
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if line:
                records.append(TrainingRecord.from_dict(json.loads(line)))
    return records


def _median(values: Sequence[float]) -> float:
    ordered = sorted(values)
    mid = len(ordered) // 2
    if len(ordered) % 2:
        return ordered[mid]
    return (ordered[mid - 1] + ordered[mid]) / 2.0


def label_records(
    records: Sequence[TrainingRecord], hard_ms: Optional[float] = None
) -> Tuple[List[QueryFeatures], List[bool], float]:
    """(feature rows, hard labels, the threshold actually used).

    ``hard_ms`` defaults to the median collected latency; aborted solves
    are hard regardless of their (truncated) elapsed time.
    """
    if not records:
        raise InvalidParameterError("no training records to label")
    if hard_ms is None:
        hard_ms = _median([r.elapsed_ms for r in records])
    rows = [r.features for r in records]
    labels = [r.aborted or r.elapsed_ms > hard_ms for r in records]
    return rows, labels, hard_ms


def train_from_records(
    records: Sequence[TrainingRecord],
    hard_ms: Optional[float] = None,
    epochs: int = 400,
    learning_rate: float = 0.5,
    l2: float = 1e-3,
) -> HardnessModel:
    """Label and fit in one step; the threshold lands in ``model.meta``."""
    rows, labels, used_ms = label_records(records, hard_ms)
    model = HardnessModel.train(
        rows, labels, epochs=epochs, learning_rate=learning_rate, l2=l2
    )
    model.meta["hard_ms"] = used_ms
    model.meta["label_rule"] = "aborted or elapsed_ms > hard_ms"
    return model


def evaluate_model(
    model: HardnessModel,
    records: Sequence[TrainingRecord],
    hard_ms: Optional[float] = None,
) -> Dict[str, float]:
    """Holdout metrics: accuracy, precision, recall over the label rule."""
    rows, labels, used_ms = label_records(records, hard_ms)
    tp = fp = tn = fn = 0
    for features, actual in zip(rows, labels):
        predicted = model.predict_hard(features)
        if predicted and actual:
            tp += 1
        elif predicted and not actual:
            fp += 1
        elif not predicted and actual:
            fn += 1
        else:
            tn += 1
    total = tp + fp + tn + fn
    return {
        "samples": float(total),
        "hard_ms": used_ms,
        "positives": float(tp + fn),
        "accuracy": (tp + tn) / total,
        "precision": tp / (tp + fp) if tp + fp else 1.0,
        "recall": tp / (tp + fn) if tp + fn else 1.0,
    }
