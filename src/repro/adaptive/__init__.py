"""Adaptive execution: appro-seeded exact pruning + feature-driven planning.

The package turns the paper's appro/exact pairing into a runtime system:

- :mod:`repro.adaptive.seeding` — the one place that knows which cheap
  approximation soundly seeds which exact search (the
  ``initial_upper_bound`` contract of :meth:`CoSKQAlgorithm.solve`);
- :mod:`repro.adaptive.features` — cheap per-query features
  (:class:`QueryFeatures`) extracted from the indexes already built;
- :mod:`repro.adaptive.model` — a stdlib-only logistic hardness
  predictor, trainable offline from execution provenance records;
- :mod:`repro.adaptive.planner` — :class:`AdaptivePlanner`, which picks
  solver, seeding, and budget split per query under an
  :class:`~repro.exec.policy.ExecutionPolicy` deadline.

See docs/ADAPTIVE.md for the architecture and the seeding soundness
argument.
"""

from repro.adaptive.features import QueryFeatures, extract_features
from repro.adaptive.model import HardnessModel
from repro.adaptive.planner import AdaptivePlanner, PlanDecision
from repro.adaptive.seeding import (
    APPRO_COUNTERPARTS,
    SeedOutcome,
    appro_counterpart,
    compute_seed,
    make_seeder,
)

__all__ = [
    "APPRO_COUNTERPARTS",
    "AdaptivePlanner",
    "HardnessModel",
    "PlanDecision",
    "QueryFeatures",
    "SeedOutcome",
    "appro_counterpart",
    "compute_seed",
    "extract_features",
    "make_seeder",
]
