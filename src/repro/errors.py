"""Exception hierarchy for the CoSKQ library.

Every error raised deliberately by this package derives from
:class:`CoSKQError`, so callers can catch library failures without
accidentally swallowing programming errors.
"""

from __future__ import annotations

__all__ = [
    "CoSKQError",
    "InfeasibleQueryError",
    "UnknownKeywordError",
    "DatasetFormatError",
    "InvalidParameterError",
    "ContractViolationError",
]


class CoSKQError(Exception):
    """Base class for all library errors."""


class UnknownKeywordError(CoSKQError, KeyError):
    """A keyword string has no id in the vocabulary."""

    def __init__(self, keyword: str):
        super().__init__(keyword)
        self.keyword = keyword

    def __str__(self) -> str:  # KeyError quotes its arg; keep it readable
        return "unknown keyword: %r" % (self.keyword,)


class InfeasibleQueryError(CoSKQError):
    """No object set in the dataset can cover the query keywords.

    Raised when some query keyword is carried by no object at all, making
    every candidate set infeasible.
    """

    def __init__(self, missing_keywords):
        self.missing_keywords = frozenset(missing_keywords)
        super().__init__(
            "query keywords covered by no object: %s"
            % (sorted(self.missing_keywords),)
        )


class DatasetFormatError(CoSKQError):
    """A dataset file does not follow the expected text format."""


class InvalidParameterError(CoSKQError, ValueError):
    """An algorithm or cost function received an out-of-domain parameter."""


class ContractViolationError(CoSKQError, AssertionError):
    """An algorithm result broke a checked correctness contract.

    Raised by :mod:`repro.analysis.contracts` (opt-in via the
    ``REPRO_CHECK_CONTRACTS=1`` environment variable) when a ``solve()``
    returns an infeasible set, misreports its cost, or violates its
    exactness/approximation-ratio guarantee against the oracle.
    """
