"""Exception hierarchy for the CoSKQ library.

Every error raised deliberately by this package derives from
:class:`CoSKQError`, so callers can catch library failures without
accidentally swallowing programming errors.

The :class:`ExecutionError` branch is the typed failure taxonomy of the
resilience runtime (:mod:`repro.exec`): solver aborts carry their partial
progress, injected chaos faults identify the failing call, and a fully
failed fallback chain surfaces as one aggregate error instead of whatever
its last stage happened to throw.  ``docs/ROBUSTNESS.md`` tabulates the
taxonomy and when each member is raised.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

__all__ = [
    "CoSKQError",
    "InfeasibleQueryError",
    "UnknownKeywordError",
    "DatasetFormatError",
    "InvalidParameterError",
    "ContractViolationError",
    "ExecutionError",
    "SearchAbortedError",
    "BudgetExceededError",
    "DeadlineExceededError",
    "InjectedFaultError",
    "ExecutionFailedError",
]


class CoSKQError(Exception):
    """Base class for all library errors."""


class UnknownKeywordError(CoSKQError, KeyError):
    """A keyword string has no id in the vocabulary."""

    def __init__(self, keyword: str):
        super().__init__(keyword)
        self.keyword = keyword

    def __str__(self) -> str:  # KeyError quotes its arg; keep it readable
        return "unknown keyword: %r" % (self.keyword,)


class InfeasibleQueryError(CoSKQError):
    """No object set in the dataset can cover the query keywords.

    Raised when some query keyword is carried by no object at all, making
    every candidate set infeasible.
    """

    def __init__(self, missing_keywords):
        self.missing_keywords = frozenset(missing_keywords)
        super().__init__(
            "query keywords covered by no object: %s"
            % (sorted(self.missing_keywords),)
        )


class DatasetFormatError(CoSKQError):
    """A dataset file does not follow the expected text format."""


class InvalidParameterError(CoSKQError, ValueError):
    """An algorithm or cost function received an out-of-domain parameter."""


class ContractViolationError(CoSKQError, AssertionError):
    """An algorithm result broke a checked correctness contract.

    Raised by :mod:`repro.analysis.contracts` (opt-in via the
    ``REPRO_CHECK_CONTRACTS=1`` environment variable) when a ``solve()``
    returns an infeasible set, misreports its cost, or violates its
    exactness/approximation-ratio guarantee against the oracle.
    """


# -- the repro.exec failure taxonomy -------------------------------------------


class ExecutionError(CoSKQError):
    """Base of the resilience runtime's failure taxonomy.

    Catching this (rather than :class:`CoSKQError`) distinguishes
    "the execution machinery gave up or was sabotaged" from semantic
    query errors such as :class:`InfeasibleQueryError`.
    """


class SearchAbortedError(ExecutionError):
    """A solver stopped before completing its search.

    Carries the solver's work counters at abort time, so callers (and the
    fallback chain's provenance) can see how far the search got before it
    was cut off.
    """

    def __init__(self, message: str, counters: Optional[Dict[str, int]] = None):
        super().__init__(message)
        #: Work-counter snapshot at the moment of the abort.
        self.counters: Dict[str, int] = dict(counters or {})


class BudgetExceededError(SearchAbortedError):
    """A work-counter budget was exhausted before the search finished."""

    def __init__(
        self,
        counter: str,
        limit: int,
        spent: int,
        counters: Optional[Dict[str, int]] = None,
    ):
        self.counter = counter
        self.limit = limit
        self.spent = spent
        super().__init__(
            "%s budget exceeded (%d spent, limit %d)" % (counter, spent, limit),
            counters,
        )


class DeadlineExceededError(SearchAbortedError):
    """A wall-clock deadline passed before the search finished."""

    def __init__(
        self,
        deadline_ms: float,
        elapsed_ms: float,
        counters: Optional[Dict[str, int]] = None,
    ):
        self.deadline_ms = deadline_ms
        self.elapsed_ms = elapsed_ms
        super().__init__(
            "deadline exceeded (%.3f ms elapsed, deadline %.3f ms)"
            % (elapsed_ms, deadline_ms),
            counters,
        )


class InjectedFaultError(ExecutionError):
    """A fault deliberately injected by the chaos harness.

    Raised only by :mod:`repro.exec.chaos`; the default
    :class:`~repro.exec.ExecutionPolicy` treats it as transient
    (retryable) so the retry/fallback paths are deterministically
    testable.
    """

    def __init__(self, method: str, call_number: int):
        self.method = method
        self.call_number = call_number
        super().__init__(
            "injected fault in %s() (call #%d)" % (method, call_number)
        )


class ExecutionFailedError(ExecutionError):
    """Every stage of a fallback chain failed.

    Aggregates the per-stage causes (``repro.exec.StageFailure`` records,
    or anything with a useful ``str()``) so a dead chain surfaces as one
    typed error instead of whatever the last stage happened to raise.
    """

    def __init__(self, failures: Sequence[object]):
        #: Per-stage failure records, in chain order.
        self.failures = tuple(failures)
        detail = "; ".join(str(f) for f in self.failures) or "empty chain"
        super().__init__(
            "all %d fallback stages failed: %s" % (len(self.failures), detail)
        )
