"""Shared machinery for CoSKQ algorithms.

:class:`SearchContext` bundles a dataset with the two indexes every
algorithm needs (IR-tree + inverted index), built lazily and shared, so a
benchmark can run many algorithms over the same data without re-indexing.

:class:`CoSKQAlgorithm` is the algorithm interface: construct against a
context (and usually a cost function), then call :meth:`solve` per query.
Common query-time primitives live here too: the nearest-neighbor set
``N(q)``, the ``d_f`` lower bound, and relevant-object retrieval.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional, Tuple, Type

from repro.cost.base import CostFunction
from repro.errors import InfeasibleQueryError
from repro.geometry.circle import Circle
from repro.index.inverted import InvertedIndex
from repro.index.irtree import IRTree
from repro.index.protocol import SpatialTextIndex
from repro.index.signatures import shared_keywords
from repro.model.dataset import Dataset
from repro.utils.floatcmp import prune_cutoff
from repro.model.objects import SpatialObject
from repro.model.query import Query
from repro.model.result import CoSKQResult

__all__ = ["SearchContext", "NNSet", "CoSKQAlgorithm", "minimal_subset"]


@dataclass(frozen=True)
class NNSet:
    """The paper's nearest-neighbor set ``N(q)`` plus derived bounds.

    ``by_keyword`` maps each query keyword ``t`` to ``(d, NN(q, t))``;
    ``objects`` is the deduplicated object set; ``d_f`` is
    ``max_{o∈N(q)} d(o, q)`` — the radius below which no feasible set can
    keep its farthest member, hence the universal lower bound used by
    every pruning rule in the paper.
    """

    by_keyword: Dict[int, Tuple[float, SpatialObject]]
    objects: Tuple[SpatialObject, ...]
    d_f: float

    @staticmethod
    def compute(index: SpatialTextIndex, query: Query) -> "NNSet":
        by_keyword = index.nearest_neighbor_set(query)
        seen: Dict[int, SpatialObject] = {}
        d_f = 0.0
        for dist, obj in by_keyword.values():
            seen[obj.oid] = obj
            if dist > d_f:
                d_f = dist
        ordered = tuple(sorted(seen.values(), key=lambda o: o.oid))
        return NNSet(by_keyword=by_keyword, objects=ordered, d_f=d_f)


class SearchContext:
    """A dataset plus lazily built, shared indexes."""

    def __init__(
        self,
        dataset: Dataset,
        max_entries: int = 16,
        index_cls: Type[SpatialTextIndex] = IRTree,
    ):
        self.dataset = dataset
        self.max_entries = max_entries
        self._index_cls = index_cls
        self._index: Optional[SpatialTextIndex] = None
        self._inverted: Optional[InvertedIndex] = None

    @property
    def index(self) -> SpatialTextIndex:
        """The IR-tree (or any :class:`SpatialTextIndex`) over the dataset.

        The build is atomic: the index is constructed into a local and
        cached only once fully built, so a ``KeyboardInterrupt`` (or any
        error) mid-build can never leave a half-built index cached — the
        next access simply rebuilds from scratch.
        """
        if self._index is None:
            built = self._index_cls.build(
                self.dataset, max_entries=self.max_entries
            )
            self._index = built
        return self._index

    @property
    def inverted(self) -> InvertedIndex:
        """The inverted index, built atomically like :attr:`index`."""
        if self._inverted is None:
            built = InvertedIndex(self.dataset)
            self._inverted = built
        return self._inverted

    def with_index(self, index: SpatialTextIndex) -> "SearchContext":
        """A sibling context over the same dataset with ``index`` swapped in.

        The inverted index is shared (it is keyword-only, so wrappers
        around the spatial index — chaos injection, remote shims, caches —
        do not affect it).  Used by :func:`repro.exec.chaos.chaos_context`.
        """
        clone = SearchContext(
            self.dataset, max_entries=self.max_entries, index_cls=self._index_cls
        )
        clone._index = index
        clone._inverted = self._inverted
        return clone

    # -- query-time primitives shared by the algorithms ---------------------

    def check_feasible(self, query: Query) -> None:
        """Raise :class:`InfeasibleQueryError` if coverage is impossible."""
        missing = self.inverted.missing_keywords(query.keywords)
        if missing:
            raise InfeasibleQueryError(missing)

    def nn_set(self, query: Query) -> NNSet:
        """``N(q)`` with its ``d_f`` bound."""
        return NNSet.compute(self.index, query)

    def relevant_in_circle(
        self, circle: Circle, keywords: FrozenSet[int]
    ) -> List[SpatialObject]:
        """Relevant objects (≥ 1 keyword of ``keywords``) inside a disk."""
        return self.index.relevant_in_circle(circle, keywords)


class CoSKQAlgorithm(ABC):
    """Interface of every CoSKQ solver in the library."""

    #: Identifier used in result provenance and the benchmark reports.
    name: str = "coskq"

    #: Whether the algorithm guarantees the optimal cost.
    exact: bool = False

    #: Proven approximation ratio (None when no published bound exists).
    #: The runtime contract layer (:mod:`repro.analysis.contracts`)
    #: cross-checks results against ``ratio × optimum`` on instances
    #: small enough for the brute-force oracle.
    ratio: Optional[float] = None

    #: Name of the cost function :attr:`ratio` is proven for; the bound
    #: only holds when the algorithm runs that cost (at its paper-default
    #: weighting).
    ratio_cost: Optional[str] = None

    def __init__(self, context: SearchContext, cost: CostFunction):
        self.context = context
        self.cost = cost
        #: Work counters for the ablation benchmarks; reset per solve().
        self.counters: Dict[str, int] = {}
        #: Optional cooperative-cancellation hook (duck-typed to
        #: :class:`repro.exec.Budget`: ``tick(amount, counters=...)`` and
        #: ``checkpoint(counters=...)``).  When set, every ``_bump`` ticks
        #: it, so long searches abort promptly with a typed
        #: :class:`~repro.errors.BudgetExceededError` /
        #: :class:`~repro.errors.DeadlineExceededError` carrying partial
        #: progress.  Attached per attempt by the resilient executor
        #: (:mod:`repro.exec.executor`); ``None`` costs one attribute
        #: check per bump.
        self.budget = None

    @abstractmethod
    def solve(
        self, query: Query, initial_upper_bound: Optional[float] = None
    ) -> CoSKQResult:
        """Return a feasible set (optimal when :attr:`exact`) for ``query``.

        ``initial_upper_bound``, when given, must be the cost of some
        feasible solution for this query under this algorithm's cost
        function — e.g. the result of the registered approximation
        counterpart (see :mod:`repro.adaptive.seeding`).  Exact solvers
        prune against it from the first node (through
        :func:`repro.utils.floatcmp.prune_cutoff`, so seeded and
        unseeded runs return bit-identical costs); approximation
        solvers, whose published ratio arguments do not account for an
        external incumbent, accept and ignore it.  Passing a value that
        is *not* a feasible cost voids the exactness guarantee.

        Raises :class:`~repro.errors.InfeasibleQueryError` when the
        query keywords cannot be covered by any object set.
        """

    def _pruning_bound(
        self, achieved: float, initial_upper_bound: Optional[float]
    ) -> float:
        """The effective pruning bound for exact searches.

        ``achieved`` is the cost of an incumbent the search has already
        constructed (it may be returned as-is, so no slack applies);
        the external bound is slacked through :func:`prune_cutoff` so a
        cost exactly equal to it is explored rather than pruned.
        """
        if initial_upper_bound is None:
            return achieved
        return min(achieved, prune_cutoff(initial_upper_bound))

    # -- helpers for subclasses -------------------------------------------------

    def _reset_counters(self) -> None:
        self.counters = {}

    def _bump(self, counter: str, amount: int = 1) -> None:
        self.counters[counter] = self.counters.get(counter, 0) + amount
        if self.budget is not None:
            self.budget.tick(amount, counters=self.counters)

    def _checkpoint(self) -> None:
        """Probe the deadline without charging work (for coarse loops)."""
        if self.budget is not None:
            self.budget.checkpoint(counters=self.counters)

    def _result(self, objects, cost_value: float) -> CoSKQResult:
        return CoSKQResult.of(
            objects, cost_value, self.name, counters=dict(self.counters)
        )

    def _evaluate(self, query: Query, objects) -> float:
        objects = list(objects)
        self._bump("cost_evaluations")
        return self.cost.evaluate(query, objects)

    def __repr__(self) -> str:
        return "%s(cost=%s)" % (type(self).__name__, self.cost.name)


def minimal_subset(
    query: Query, objects: Tuple[SpatialObject, ...] | List[SpatialObject]
) -> List[SpatialObject]:
    """Drop objects that contribute no exclusive query keyword.

    Greedy reverse sweep: an object is removed (all instances of its
    oid at once) when the remaining ones still cover ``q.ψ``.  For
    monotone costs this never increases the cost, so algorithms apply it
    before scoring candidate sets.

    Query distances are computed once for the sort and coverage is
    tracked with per-keyword counts updated incrementally — O(n·k +
    n log n) where the naive re-sort-and-rebuild sweep was O(n²·k) —
    with removal decisions identical to the naive sweep's.
    """
    instances = list(objects)
    qloc = query.location
    order = sorted(
        range(len(instances)),
        key=lambda i: -qloc.distance_to(instances[i].location),
    )
    # Per-keyword carrier counts over the kept multiset, restricted to
    # the query keywords (the only ones the coverage test reads).
    counts: Dict[int, int] = {t: 0 for t in query.keywords}
    group_size: Dict[int, int] = {}
    group_counts: Dict[int, Dict[int, int]] = {}
    for obj in instances:
        group_size[obj.oid] = group_size.get(obj.oid, 0) + 1
        contribution = group_counts.setdefault(obj.oid, {})
        for t in shared_keywords(obj.keywords, query.keywords):
            counts[t] += 1
            contribution[t] = contribution.get(t, 0) + 1
    if any(count == 0 for count in counts.values()):
        # The set never covers the query, so no removal can pass the
        # coverage test — exactly what the naive sweep concludes.
        return instances
    kept_size = len(instances)
    removed: set[int] = set()
    for i in order:
        oid = instances[i].oid
        if oid in removed:
            continue  # a duplicate instance; the whole group is gone
        size = group_size[oid]
        if kept_size - size <= 0:
            continue
        contribution = group_counts[oid]
        if any(counts[t] - c <= 0 for t, c in contribution.items()):
            continue  # removal would uncover some query keyword
        removed.add(oid)
        kept_size -= size
        for t, c in contribution.items():
            counts[t] -= c
    return [o for o in instances if o.oid not in removed]
