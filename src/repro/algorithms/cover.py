"""Constrained keyword-cover search used by the exact algorithms.

The owner-driven exact algorithms reduce each owner candidate to the
question: *is there a set of objects, drawn from a pruned region, that
covers the remaining keywords while keeping every pairwise distance within
a cap?*  :func:`find_constrained_cover` answers it with a depth-first
search that

- branches on the rarest uncovered keyword (narrowest search tree),
- enforces the pairwise cap incrementally (a candidate violating the cap
  against any already-chosen object is pruned immediately),
- deduplicates candidates that are dominated for this sub-search (same
  relevant keyword trace, and no object between them and every anchor is
  not tracked — domination here is purely trace equality plus the cap
  test, which preserves completeness).

Because the cost of a set is fixed by its distance owners, the caller
needs only *some* valid completion, never the best one — the search stops
at the first success.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

from repro.index.signatures import bits_of, mask_of, shared_keywords, signatures_enabled
from repro.kernels.oracle import DistanceOracle
from repro.model.objects import SpatialObject

__all__ = ["find_constrained_cover", "iter_covers", "CoverBudgetExceeded"]


class CoverBudgetExceeded(Exception):
    """Raised when a cover search exceeds its node budget (safety valve)."""


def find_constrained_cover(
    uncovered: FrozenSet[int],
    candidates: Sequence[SpatialObject],
    anchors: Sequence[SpatialObject],
    pair_cap: Optional[float],
    node_budget: int = 2_000_000,
    oracle: Optional[DistanceOracle] = None,
) -> Optional[List[SpatialObject]]:
    """A set of candidates covering ``uncovered`` under the pairwise cap.

    ``anchors`` are objects already committed to the set (the distance
    owners); every chosen candidate must be within ``pair_cap`` of every
    anchor and of every other chosen candidate.  ``pair_cap`` of None
    disables the distance constraint (pure set cover).

    ``oracle`` may carry a :class:`~repro.kernels.oracle.DistanceOracle`
    built by the caller over exactly ``candidates`` with ``anchors[0]``
    as its anchor (single-anchor searches only).  Then every distance
    the search needs is a memoized array lookup shared across repeated
    calls — the bisection probes of the owner-driven exact search — and
    the per-keyword tables are built once instead of per call.  Results
    and node-budget accounting are identical with or without it.

    Returns the chosen candidates (without the anchors) or None when no
    valid cover exists.  Raises :class:`CoverBudgetExceeded` if the
    search visits more than ``node_budget`` nodes — callers treat this as
    "give up on this owner", which for the exact algorithms is prevented
    by their pruning making regions small.
    """
    if not uncovered:
        return []

    if oracle is not None and len(anchors) == 1:
        return _find_cover_with_oracle(uncovered, pair_cap, node_budget, oracle)

    by_keyword = _candidates_by_keyword(uncovered, candidates, anchors, pair_cap)
    if by_keyword is None:
        return None
    budget = [node_budget]
    chosen: List[SpatialObject] = []
    if signatures_enabled():
        # Bitmask twin of ``_search``: same branch keyword, candidate
        # order, cap checks and budget accounting — the uncovered-set
        # bookkeeping just runs on integer masks.
        if _search_masked(mask_of(uncovered), by_keyword, chosen, set(), pair_cap, budget):
            return list(chosen)
        return None
    if _search(frozenset(uncovered), by_keyword, chosen, set(), pair_cap, budget):
        return list(chosen)
    return None


def _find_cover_with_oracle(
    uncovered: FrozenSet[int],
    pair_cap: Optional[float],
    node_budget: int,
    oracle: DistanceOracle,
) -> Optional[List[SpatialObject]]:
    """The oracle-backed cover search (same answers, memoized distances).

    The cap-independent per-keyword tables come from the oracle's cache;
    the anchor filter collapses to one vector compare over the memoized
    owner-distance row.  Deduplication commutes with the cap filter
    because the dedup key includes the exact location — co-located
    duplicates share their anchor distance, so whichever representative
    survives, its cap verdict is the class's verdict.
    """
    tables = oracle.cover_tables(frozenset(uncovered))
    if tables is None:
        return None
    if pair_cap is None:
        by_keyword = {t: list(lst) for t, lst in tables.items()}
    else:
        anchor_d = oracle.anchor_d
        by_keyword = {}
        for t, lst in tables.items():
            kept = [i for i in lst if anchor_d[i] <= pair_cap]
            if not kept:
                return None
            by_keyword[t] = kept
    budget = [node_budget]
    chosen: List[int] = []
    if signatures_enabled():
        if _search_indexed_masked(
            mask_of(frozenset(uncovered)),
            by_keyword,
            chosen,
            set(),
            pair_cap,
            budget,
            oracle,
            oracle.keyword_masks(),
        ):
            return [oracle.objects[i] for i in chosen]
        return None
    if _search_indexed(
        frozenset(uncovered), by_keyword, chosen, set(), pair_cap, budget, oracle
    ):
        return [oracle.objects[i] for i in chosen]
    return None


def _candidates_by_keyword(
    uncovered: FrozenSet[int],
    candidates: Sequence[SpatialObject],
    anchors: Sequence[SpatialObject],
    pair_cap: Optional[float],
) -> Optional[Dict[int, List[SpatialObject]]]:
    """Per-keyword candidate lists, pre-filtered against the anchors.

    Returns None when some keyword has no candidate at all (no cover can
    exist).  Candidates are deduplicated by their relevant keyword trace
    *only when co-located*, since distinct locations interact differently
    with the pairwise cap.
    """
    anchor_locations = [a.location for a in anchors]
    by_keyword: Dict[int, List[SpatialObject]] = {t: [] for t in uncovered}
    if signatures_enabled():
        # Mask traces: the dedup key carries the trace bitmask instead of
        # the trace frozenset (a bijection, so the same candidates are
        # kept) and richness is a popcount instead of a set-len.
        u_mask = mask_of(uncovered)
        seen_mask_traces: set[Tuple[float, float, int]] = set()
        for obj in candidates:
            trace_mask = mask_of(obj.keywords) & u_mask
            if not trace_mask:
                continue
            if pair_cap is not None and any(
                obj.location.distance_to(loc) > pair_cap for loc in anchor_locations
            ):
                continue
            key = (obj.location.x, obj.location.y, trace_mask)
            if key in seen_mask_traces:
                continue
            seen_mask_traces.add(key)
            for t in bits_of(trace_mask):
                by_keyword[t].append(obj)
        for t, lst in by_keyword.items():
            if not lst:
                return None
            # Richer candidates first: maximizes coverage per branch.
            lst.sort(key=lambda o: (-(mask_of(o.keywords) & u_mask).bit_count(), o.oid))
        return by_keyword
    seen_traces: set[Tuple[float, float, FrozenSet[int]]] = set()
    for obj in candidates:
        trace = obj.keywords & uncovered  # repro: noqa(R9) — toggle-off baseline
        if not trace:
            continue
        if pair_cap is not None and any(
            obj.location.distance_to(loc) > pair_cap for loc in anchor_locations
        ):
            continue
        key = (obj.location.x, obj.location.y, trace)
        if key in seen_traces:
            continue
        seen_traces.add(key)
        for t in trace:
            by_keyword[t].append(obj)
    for t, lst in by_keyword.items():
        if not lst:
            return None
        # Richer candidates first: maximizes coverage per branch.
        lst.sort(key=lambda o: (-len(o.keywords & uncovered), o.oid))  # repro: noqa(R9) — toggle-off baseline
    return by_keyword


def _search(
    uncovered: FrozenSet[int],
    by_keyword: Dict[int, List[SpatialObject]],
    chosen: List[SpatialObject],
    chosen_oids: Set[int],
    pair_cap: Optional[float],
    budget: List[int],
) -> bool:
    if not uncovered:
        return True
    budget[0] -= 1
    if budget[0] < 0:
        raise CoverBudgetExceeded()
    # Branch on the rarest uncovered keyword.
    branch_keyword = min(uncovered, key=lambda t: (len(by_keyword[t]), t))
    for obj in by_keyword[branch_keyword]:
        if obj.oid in chosen_oids:
            continue
        if pair_cap is not None and any(
            obj.location.distance_to(o.location) > pair_cap for o in chosen
        ):
            continue
        chosen.append(obj)
        chosen_oids.add(obj.oid)
        remaining = uncovered - obj.keywords
        if _search(remaining, by_keyword, chosen, chosen_oids, pair_cap, budget):
            return True
        chosen.pop()
        chosen_oids.discard(obj.oid)
    return False


def _search_masked(
    uncovered_mask: int,
    by_keyword: Dict[int, List[SpatialObject]],
    chosen: List[SpatialObject],
    chosen_oids: Set[int],
    pair_cap: Optional[float],
    budget: List[int],
) -> bool:
    """:func:`_search` with the uncovered set carried as a bitmask.

    The branch keyword minimizes ``(len(by_keyword[t]), t)``, which has a
    unique minimum regardless of iteration order, so branching matches
    the set-based search bit for bit; ``uncovered - obj.keywords``
    becomes ``mask & ~obj_mask``.  Node visits, candidate order and
    budget accounting are identical.
    """
    if not uncovered_mask:
        return True
    budget[0] -= 1
    if budget[0] < 0:
        raise CoverBudgetExceeded()
    branch_keyword = min(bits_of(uncovered_mask), key=lambda t: (len(by_keyword[t]), t))
    for obj in by_keyword[branch_keyword]:
        if obj.oid in chosen_oids:
            continue
        if pair_cap is not None and any(
            obj.location.distance_to(o.location) > pair_cap for o in chosen
        ):
            continue
        chosen.append(obj)
        chosen_oids.add(obj.oid)
        remaining = uncovered_mask & ~mask_of(obj.keywords)
        if _search_masked(remaining, by_keyword, chosen, chosen_oids, pair_cap, budget):
            return True
        chosen.pop()
        chosen_oids.discard(obj.oid)
    return False


def _search_indexed(
    uncovered: FrozenSet[int],
    by_keyword: Dict[int, List[int]],
    chosen: List[int],
    chosen_oids: Set[int],
    pair_cap: Optional[float],
    budget: List[int],
    oracle: DistanceOracle,
) -> bool:
    """:func:`_search` over candidate *indices* with memoized distances.

    Identical recursion structure (branch keyword, candidate order, cap
    checks, budget accounting) so the two paths visit the same nodes and
    return the same cover; only the distance evaluations differ — each
    is computed at most once per owner instead of once per probe.
    """
    if not uncovered:
        return True
    budget[0] -= 1
    if budget[0] < 0:
        raise CoverBudgetExceeded()
    branch_keyword = min(uncovered, key=lambda t: (len(by_keyword[t]), t))
    objects = oracle.objects
    for idx in by_keyword[branch_keyword]:
        obj = objects[idx]
        if obj.oid in chosen_oids:
            continue
        if pair_cap is not None and oracle.any_pair_beyond(idx, chosen, pair_cap):
            continue
        chosen.append(idx)
        chosen_oids.add(obj.oid)
        remaining = uncovered - obj.keywords
        if _search_indexed(
            remaining, by_keyword, chosen, chosen_oids, pair_cap, budget, oracle
        ):
            return True
        chosen.pop()
        chosen_oids.discard(obj.oid)
    return False


def _search_indexed_masked(
    uncovered_mask: int,
    by_keyword: Dict[int, List[int]],
    chosen: List[int],
    chosen_oids: Set[int],
    pair_cap: Optional[float],
    budget: List[int],
    oracle: DistanceOracle,
    masks: Sequence[int],
) -> bool:
    """:func:`_search_indexed` with bitmask uncovered-set bookkeeping.

    ``masks`` are the oracle's per-candidate keyword masks, indexed like
    ``oracle.objects``.  Same recursion structure, candidate order, cap
    checks and budget accounting as the set-based twin.
    """
    if not uncovered_mask:
        return True
    budget[0] -= 1
    if budget[0] < 0:
        raise CoverBudgetExceeded()
    branch_keyword = min(bits_of(uncovered_mask), key=lambda t: (len(by_keyword[t]), t))
    objects = oracle.objects
    for idx in by_keyword[branch_keyword]:
        obj = objects[idx]
        if obj.oid in chosen_oids:
            continue
        if pair_cap is not None and oracle.any_pair_beyond(idx, chosen, pair_cap):
            continue
        chosen.append(idx)
        chosen_oids.add(obj.oid)
        remaining = uncovered_mask & ~masks[idx]
        if _search_indexed_masked(
            remaining, by_keyword, chosen, chosen_oids, pair_cap, budget, oracle, masks
        ):
            return True
        chosen.pop()
        chosen_oids.discard(obj.oid)
    return False


def iter_covers(
    keywords: FrozenSet[int],
    candidates: Sequence[SpatialObject],
):
    """Yield every irredundant cover of ``keywords`` from ``candidates``.

    Each yielded list covers ``keywords``; every object in it covers at
    least one keyword not covered by the objects before it, so each cover
    has at most ``|keywords|`` members and no cover is yielded twice.
    Used by the brute-force oracle, so clarity beats speed here.
    """
    by_keyword: Dict[int, List[SpatialObject]] = {t: [] for t in keywords}
    for obj in candidates:
        for t in shared_keywords(obj.keywords, keywords):
            by_keyword[t].append(obj)
    if any(not lst for lst in by_keyword.values()):
        return

    def rec(uncovered: FrozenSet[int], chosen: List[SpatialObject]):
        if not uncovered:
            yield list(chosen)
            return
        branch = min(uncovered, key=lambda t: (len(by_keyword[t]), t))
        for obj in by_keyword[branch]:
            if any(o.oid == obj.oid for o in chosen):
                continue
            chosen.append(obj)
            yield from rec(uncovered - obj.keywords, chosen)
            chosen.pop()

    # Distinct branch orders can reach the same object set; deduplicate.
    seen: set[Tuple[int, ...]] = set()
    for cover in rec(frozenset(keywords), []):
        key = tuple(sorted(o.oid for o in cover))
        if key not in seen:
            seen.add(key)
            yield cover
