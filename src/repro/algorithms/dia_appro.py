"""Dia-Appro: the paper's approximate algorithm for the Dia cost.

The owner-driven approximation scheme configured for :class:`DiaCost`.
The paper's analysis: with ``r1`` the distance from the optimal owner to
its farthest greedy pick and ``r2`` the owner's query distance, the built
set lies in ``C(o*, r1) ∩ C(q, r2)`` whose chord length is at most
``sqrt(3)`` times ``max(r1, r2)`` — hence the **sqrt(3) ≈ 1.732**
approximation ratio.
"""

from __future__ import annotations

import math

from repro.algorithms.base import SearchContext
from repro.algorithms.owner_appro import OwnerRingApproximation
from repro.cost.functions import DiaCost

__all__ = ["DiaAppro", "DIA_APPRO_RATIO"]

#: The proven approximation ratio of Dia-Appro.
DIA_APPRO_RATIO = math.sqrt(3.0)


class DiaAppro(OwnerRingApproximation):
    """sqrt(3)-approximation for CoSKQ with the Dia cost."""

    name = "dia-appro"
    ratio = DIA_APPRO_RATIO
    ratio_cost = "dia"

    def __init__(self, context: SearchContext, cost: DiaCost | None = None):
        super().__init__(context, cost if cost is not None else DiaCost())
