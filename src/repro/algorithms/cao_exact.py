"""The baseline exact algorithm: best-first branch-and-bound over sets.

Cao et al. (SIGMOD 2011) solve CoSKQ with the MaxSum cost by exhaustive
search over candidate object sets with cost-bound pruning.  This module
implements that style of baseline — the comparator the paper's
owner-driven MaxSum-Exact is evaluated against:

- a priority queue of partial sets ordered by an admissible cost lower
  bound (the true partial cost for monotone costs, plus a per-keyword
  completion bound),
- expansion branches on the rarest uncovered keyword,
- the incumbent starts from the ``N(q)`` approximation and prunes states
  whose bound already meets it.

The search space is the set space — exponential in ``|q.ψ|`` — which is
precisely why the owner-driven algorithm wins in the paper's running-time
figures.  It is generic over every cost in the library (for MIN-aggregate
costs a completed cover may additionally be extended by one extra close
object; see :mod:`repro.algorithms.bruteforce` for why one suffices).
"""

from __future__ import annotations

import heapq
import itertools
import math
from array import array
from typing import Dict, FrozenSet, List, Optional, Tuple

from repro.algorithms.base import CoSKQAlgorithm
from repro.cost.base import QueryAggregate
from repro.errors import BudgetExceededError
from repro.index.signatures import covers_all, shared_keywords
from repro.kernels import kernels_enabled, max_distance_from
from repro.model.objects import SpatialObject
from repro.model.query import Query
from repro.model.result import CoSKQResult

__all__ = ["BranchBoundExact", "CaoExact"]


class _State:
    """A partial set on the branch-and-bound frontier.

    ``xs``/``ys`` mirror the chosen objects' coordinates as packed
    arrays (None when the kernels are toggled off) so the incremental
    diameter in :meth:`extend` runs on flat doubles; the kernel tracks
    the same exact hypot maximum as the scalar loop.
    """

    __slots__ = ("chosen", "covered", "qdist_sum", "qdist_max", "qdist_min", "diam", "xs", "ys")

    def __init__(self, chosen, covered, qdist_sum, qdist_max, qdist_min, diam, xs=None, ys=None):
        self.chosen: Tuple[SpatialObject, ...] = chosen
        self.covered: FrozenSet[int] = covered
        self.qdist_sum = qdist_sum
        self.qdist_max = qdist_max
        self.qdist_min = qdist_min
        self.diam = diam
        self.xs: Optional[array] = xs
        self.ys: Optional[array] = ys

    def extend(self, obj: SpatialObject, qdist: float, query_keywords: FrozenSet[int]) -> "_State":
        loc = obj.location
        new_diam = self.diam
        new_xs = new_ys = None
        if self.xs is not None:
            if len(self.xs):
                d = max_distance_from(loc.x, loc.y, self.xs, self.ys)
                if d > new_diam:
                    new_diam = d
            new_xs = array("d", self.xs)
            new_xs.append(loc.x)
            new_ys = array("d", self.ys)
            new_ys.append(loc.y)
        else:
            for other in self.chosen:
                d = loc.distance_to(other.location)
                if d > new_diam:
                    new_diam = d
        return _State(
            chosen=self.chosen + (obj,),
            covered=self.covered | shared_keywords(obj.keywords, query_keywords),
            qdist_sum=self.qdist_sum + qdist,
            qdist_max=max(self.qdist_max, qdist),
            qdist_min=min(self.qdist_min, qdist),
            diam=new_diam,
            xs=new_xs,
            ys=new_ys,
        )


class BranchBoundExact(CoSKQAlgorithm):
    """Exact CoSKQ by best-first search over partial covers."""

    name = "bnb-exact"
    exact = True

    #: Safety valve for pathological instances; the benchmark harness
    #: lowers it so a blown-up baseline registers as DNF instead of
    #: stalling a whole sweep (the paper reports the same as ">10 hours").
    DEFAULT_MAX_EXPANSIONS = 5_000_000

    def __init__(self, context, cost, max_expansions: int | None = None):
        super().__init__(context, cost)
        self.max_expansions = (
            max_expansions if max_expansions is not None else self.DEFAULT_MAX_EXPANSIONS
        )
        # The frontier can grow by hundreds of children per expansion
        # (every carrier of the branch keyword), so memory — not time —
        # is what actually dies first on weakly-bounded costs like Dia.
        # Cap pushed states proportionally and fail loudly past it.
        self.max_pushes = 8 * self.max_expansions

    def solve(
        self, query: Query, initial_upper_bound: Optional[float] = None
    ) -> CoSKQResult:
        self._reset_counters()
        nn = self.context.nn_set(query)
        incumbent: List[SpatialObject] = list(nn.objects)
        incumbent_cost = self._evaluate(query, incumbent)
        # Pruning bound: the achieved incumbent or the slacked external
        # seed, whichever is tighter (see CoSKQAlgorithm.solve).
        bound = self._pruning_bound(incumbent_cost, initial_upper_bound)

        relevant = self.context.inverted.relevant_objects(query.keywords)
        qdist: Dict[int, float] = {
            o.oid: query.location.distance_to(o.location) for o in relevant
        }
        by_keyword: Dict[int, List[SpatialObject]] = {t: [] for t in query.keywords}
        for obj in relevant:
            for t in shared_keywords(obj.keywords, query.keywords):
                by_keyword[t].append(obj)
        for lst in by_keyword.values():
            lst.sort(key=lambda o: (qdist[o.oid], o.oid))
        # Cheapest possible query distance per keyword (= d(NN(q,t), q)).
        nn_dist = {t: qdist[by_keyword[t][0].oid] for t in query.keywords}
        global_min_qdist = min(qdist.values())

        aggregate = self.cost.query_aggregate
        counter = itertools.count()
        if kernels_enabled():
            root = _State((), frozenset(), 0.0, 0.0, math.inf, 0.0, array("d"), array("d"))
        else:
            root = _State((), frozenset(), 0.0, 0.0, math.inf, 0.0)
        heap: List[Tuple[float, int, _State]] = [(0.0, next(counter), root)]
        expansions = 0
        pushes = 0
        while heap:
            lb, _, state = heapq.heappop(heap)
            if lb >= bound:
                break  # best-first: nothing later can beat the bound
            if covers_all(query.keywords, state.covered):
                candidate = list(state.chosen)
                cost_value = self._evaluate(query, candidate)
                if cost_value < incumbent_cost:
                    incumbent_cost = cost_value
                    incumbent = candidate
                if aggregate is QueryAggregate.MIN:
                    extended = self._try_min_extras(query, candidate, relevant, qdist)
                    if extended is not None and extended[1] < incumbent_cost:
                        incumbent, incumbent_cost = list(extended[0]), extended[1]
                if incumbent_cost < bound:
                    bound = incumbent_cost
                continue
            expansions += 1
            self._bump("states_expanded")
            if expansions > self.max_expansions:
                raise BudgetExceededError(
                    "states_expanded",
                    self.max_expansions,
                    expansions,
                    counters=self.counters,
                )
            branch_keyword = min(
                query.keywords - state.covered,
                key=lambda t: (len(by_keyword[t]), t),
            )
            chosen_ids = {o.oid for o in state.chosen}
            for obj in by_keyword[branch_keyword]:
                if obj.oid in chosen_ids:
                    continue
                child = state.extend(obj, qdist[obj.oid], query.keywords)
                child_lb = self._lower_bound(
                    child, query, nn_dist, global_min_qdist
                )
                if child_lb < bound:
                    pushes += 1
                    self._bump("states_pushed")
                    if pushes > self.max_pushes:
                        raise BudgetExceededError(
                            "states_pushed",
                            self.max_pushes,
                            pushes,
                            counters=self.counters,
                        )
                    heapq.heappush(heap, (child_lb, next(counter), child))
        return self._result(incumbent, incumbent_cost)

    # -- bounding ---------------------------------------------------------------

    def _lower_bound(
        self,
        state: _State,
        query: Query,
        nn_dist: Dict[int, float],
        global_min_qdist: float,
    ) -> float:
        """An admissible bound on the cost of any completion of ``state``."""
        uncovered = query.keywords - state.covered
        # Any completion must add, for each uncovered keyword, an object no
        # closer to q than that keyword's nearest carrier.
        pending = max((nn_dist[t] for t in uncovered), default=0.0)
        aggregate = self.cost.query_aggregate
        if aggregate is QueryAggregate.SUM:
            q_bound = state.qdist_sum + pending
        elif aggregate is QueryAggregate.MAX:
            q_bound = max(state.qdist_max, pending)
        else:  # MIN: more objects can only pull the minimum down
            current = state.qdist_min if state.chosen else math.inf
            q_bound = min(current, global_min_qdist)
        return self.cost.combine(q_bound, state.diam)

    def _try_min_extras(
        self,
        query: Query,
        cover: List[SpatialObject],
        relevant: List[SpatialObject],
        qdist: Dict[int, float],
    ) -> Optional[Tuple[List[SpatialObject], float]]:
        """Best single-object extension of a cover (MIN-aggregate costs)."""
        chosen_ids = {o.oid for o in cover}
        current_min = min(qdist[o.oid] for o in cover)
        best: Optional[Tuple[List[SpatialObject], float]] = None
        for extra in relevant:
            if extra.oid in chosen_ids or qdist[extra.oid] >= current_min:
                continue
            extended = cover + [extra]
            cost_value = self._evaluate(query, extended)
            if best is None or cost_value < best[1]:
                best = (extended, cost_value)
        return best


class CaoExact(BranchBoundExact):
    """Alias matching the paper's baseline naming (Cao-Exact)."""

    name = "cao-exact"
