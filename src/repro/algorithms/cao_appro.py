"""The baseline approximate algorithms of Cao et al. (SIGMOD 2011).

- :class:`CaoAppro1` returns the nearest-neighbor set ``N(q)`` — a
  3-approximation for the MaxSum cost: every member is within ``d_f`` of
  the query, so cost ≤ d_f + 2·d_f, while the optimum is at least d_f.
- :class:`CaoAppro2` refines it: let ``t_f`` be the keyword whose nearest
  carrier is farthest (the keyword forcing ``d_f``).  Some carrier of
  ``t_f`` belongs to every feasible set, so the algorithm iterates the
  carriers ``o`` of ``t_f`` in ascending ``d(o, q)`` and completes each
  with the per-keyword nearest neighbors ``NN(o, t)``, keeping the best —
  a 2-approximation for MaxSum.

Both are cost-generic in implementation (they build feasible sets and
score them with whatever cost they are given), matching how the paper
adapts them as comparators for the Dia cost.
"""

from __future__ import annotations

from typing import List, Optional

from repro.algorithms.base import CoSKQAlgorithm
from repro.algorithms.nnset import NNSetAlgorithm
from repro.model.objects import SpatialObject
from repro.model.query import Query
from repro.model.result import CoSKQResult

__all__ = ["CaoAppro1", "CaoAppro2"]


class CaoAppro1(NNSetAlgorithm):
    """Cao et al.'s first approximation: ``N(q)`` (3-approx for MaxSum)."""

    name = "cao-appro1"
    ratio = 3.0
    ratio_cost = "maxsum"


class CaoAppro2(CoSKQAlgorithm):
    """Cao et al.'s second approximation (2-approx for MaxSum)."""

    name = "cao-appro2"
    exact = False
    ratio = 2.0
    ratio_cost = "maxsum"

    def solve(
        self, query: Query, initial_upper_bound: Optional[float] = None
    ) -> CoSKQResult:
        # ``initial_upper_bound`` is accepted for interface uniformity
        # and ignored: the 2-approximation argument is about this
        # search's own incumbent, not an external one.
        self._reset_counters()
        nn = self.context.nn_set(query)
        best: List[SpatialObject] = list(nn.objects)
        best_cost = self._evaluate(query, best)

        # The keyword whose nearest carrier is farthest (realizes d_f).
        t_f = max(query.keywords, key=lambda t: (nn.by_keyword[t][0], t))
        index = self.context.index
        for dist, owner in index.nearest_relevant_iter(
            query.location, frozenset((t_f,))
        ):
            if self.cost.combine(dist, 0.0) >= best_cost:
                break
            self._bump("carriers_tried")
            candidate = self._complete_with_keyword_nns(query, owner)
            if candidate is None:
                continue
            cost_value = self._evaluate(query, candidate)
            if cost_value < best_cost:
                best_cost = cost_value
                best = candidate
        return self._result(best, best_cost)

    def _complete_with_keyword_nns(
        self, query: Query, owner: SpatialObject
    ) -> List[SpatialObject] | None:
        """``{owner} ∪ { NN(owner, t) : t uncovered }`` (unrestricted NNs)."""
        chosen: List[SpatialObject] = [owner]
        uncovered = set(query.keywords - owner.keywords)
        index = self.context.index
        while uncovered:
            t = min(uncovered)
            hit = index.keyword_nn(owner.location, t)
            if hit is None:
                return None
            _, obj = hit
            self._bump("nn_lookups")
            chosen.append(obj)
            uncovered -= obj.keywords
        return chosen
