"""The distance owner-driven approximation scheme.

Shared engine for the paper's two approximate algorithms (MaxSum-Appro
and Dia-Appro).  The scheme:

1. Initialize the incumbent with ``N(q)``.
2. Iterate *query distance owner* candidates ``o`` — relevant objects in
   ascending ``d(o, q)`` — skipping those below ``d_f`` (no feasible set
   has its farthest member closer than ``d_f``) and stopping as soon as
   the owner distance alone already costs at least the incumbent.
3. For each owner, build one feasible set inside the disk ``C(q, d(o,q))``
   greedily: repeatedly add the candidate *nearest to the owner* that
   covers an uncovered keyword.  Keeping the completion close to the
   owner is what bounds the set diameter and yields the paper's 1.375
   (MaxSum) and sqrt(3) (Dia) approximation ratios.
4. Return the cheapest set seen.

Feasibility inside the disk is guaranteed: every ``NN(q, t)`` lies within
``d_f ≤ d(o, q)`` of the query.
"""

from __future__ import annotations

from array import array
from typing import List, Optional

from repro.algorithms.base import CoSKQAlgorithm
from repro.geometry.circle import Circle
from repro.index.signatures import mask_of, pack_masks, signatures_enabled
from repro.kernels import kernels_enabled, max_distance_from
from repro.model.objects import SpatialObject
from repro.model.query import Query
from repro.model.result import CoSKQResult

__all__ = ["OwnerRingApproximation", "greedy_completion_near"]


def greedy_completion_near(
    anchor: SpatialObject,
    uncovered: frozenset[int],
    candidates: List[SpatialObject],
) -> List[SpatialObject] | None:
    """Cover ``uncovered`` greedily with candidates nearest to ``anchor``.

    Repeatedly picks the candidate closest to ``anchor`` that covers at
    least one still-uncovered keyword.  Returns the chosen objects, or
    None when the candidates cannot cover everything.
    """
    chosen: List[SpatialObject] = []
    # One sort up front; each pass consumes the next useful candidate.
    ordered = sorted(
        candidates,
        key=lambda o: (anchor.location.distance_to(o.location), o.oid),
    )
    taken = [False] * len(ordered)
    if signatures_enabled():
        # Mask twin: "covers a still-uncovered keyword" is a nonzero AND
        # and consuming the coverage is ``&= ~covered`` — same picks.
        remaining_mask = mask_of(uncovered)
        masks = pack_masks(ordered)
        # Bounded: every pass either consumes one candidate or returns,
        # so the loop runs at most len(ordered) iterations.
        while remaining_mask:  # repro: noqa(R11) — bounded by len(ordered)
            progressed = False
            for i, obj in enumerate(ordered):
                if taken[i]:
                    continue
                covered_mask = masks[i] & remaining_mask
                if covered_mask:
                    taken[i] = True
                    chosen.append(obj)
                    remaining_mask &= ~covered_mask
                    progressed = True
                    break
            if not progressed:
                return None
        return chosen
    remaining = set(uncovered)
    # Bounded for the same reason as the mask twin above.
    while remaining:  # repro: noqa(R11) — bounded by len(ordered)
        progressed = False
        for i, obj in enumerate(ordered):
            if taken[i]:
                continue
            covered_now = obj.keywords & remaining  # repro: noqa(R9) — toggle-off baseline
            if covered_now:
                taken[i] = True
                chosen.append(obj)
                remaining -= covered_now
                progressed = True
                break
        if not progressed:
            return None
    return chosen


class OwnerRingApproximation(CoSKQAlgorithm):
    """Owner-candidate iteration + nearest-to-owner greedy completion."""

    name = "owner-appro"
    exact = False

    def solve(
        self, query: Query, initial_upper_bound: Optional[float] = None
    ) -> CoSKQResult:
        # ``initial_upper_bound`` is accepted for interface uniformity
        # and ignored: the approximation bound argues about this search's
        # own incumbent, not an external one.
        self._reset_counters()
        nn = self.context.nn_set(query)
        best: List[SpatialObject] = list(nn.objects)
        best_cost = self._evaluate(query, best)
        d_f = nn.d_f
        index = self.context.index
        for dist, owner in index.nearest_relevant_iter(query.location, query.keywords):
            self._checkpoint()
            if dist < d_f:
                # Cannot be the farthest member of any feasible set.
                continue
            if self.cost.combine(dist, 0.0) >= best_cost:
                # Owner distance alone already meets the incumbent; all
                # later owners are farther, so stop.
                break
            self._bump("owners_tried")
            candidate_set = self._build_for_owner(query, owner, dist, best_cost)
            if candidate_set is None:
                continue
            cost_value = self._evaluate(query, candidate_set)
            if cost_value < best_cost:
                best_cost = cost_value
                best = candidate_set
        return self._result(best, best_cost)

    def _build_for_owner(
        self,
        query: Query,
        owner: SpatialObject,
        owner_dist: float,
        cost_bound: float = float("inf"),
    ) -> List[SpatialObject] | None:
        uncovered = set(query.keywords - owner.keywords)
        if not uncovered:
            return [owner]
        use_sig = signatures_enabled()
        u_mask = mask_of(frozenset(uncovered)) if use_sig else 0
        # Greedy nearest-to-owner completion in a single disk-pruned walk:
        # objects stream in ascending distance from the owner, so the
        # first one covering a still-uncovered keyword is exactly the
        # greedy pick.  An object skipped as useless can never become
        # useful later (the uncovered set only shrinks), so one pass
        # suffices.
        chosen: List[SpatialObject] = [owner]
        index = self.context.index
        disk = Circle(query.location, owner_dist)
        diam_so_far = 0.0
        # Flat coordinates of the chosen set: the incremental-diameter
        # update becomes one packed-array kernel call per greedy pick
        # instead of per-member attribute chasing.  The kernel's maximum
        # is the same exact hypot value the scalar loop tracks.
        chosen_xs: Optional[array]
        chosen_ys: Optional[array]
        use_flat = kernels_enabled()
        if use_flat:
            chosen_xs = array("d", (owner.location.x,))
            chosen_ys = array("d", (owner.location.y,))
        else:
            chosen_xs = None
            chosen_ys = None
        for _, obj in index.nearest_relevant_iter(
            owner.location, frozenset(uncovered), within=disk
        ):
            self._checkpoint()
            if use_sig:
                covered_mask = mask_of(obj.keywords) & u_mask
                if not covered_mask:
                    continue
            else:
                covered_now = obj.keywords & uncovered  # repro: noqa(R9) — toggle-off baseline
                if not covered_now:
                    continue
            if use_flat:
                loc = obj.location
                d = max_distance_from(loc.x, loc.y, chosen_xs, chosen_ys)
                if d > diam_so_far:
                    diam_so_far = d
            else:
                for member in chosen:
                    d = member.location.distance_to(obj.location)
                    if d > diam_so_far:
                        diam_so_far = d
            # The greedy picks are forced; once the partial set already
            # costs at least the incumbent this owner cannot win.
            if self.cost.combine(owner_dist, diam_so_far) >= cost_bound:
                self._bump("completions_aborted")
                return None
            chosen.append(obj)
            if use_flat:
                chosen_xs.append(obj.location.x)
                chosen_ys.append(obj.location.y)
            else:
                # The scalar path reads `chosen` directly; no flat mirror
                # to maintain.
                pass
            if use_sig:
                u_mask &= ~covered_mask
                if not u_mask:
                    return chosen
            else:
                uncovered -= covered_now
                if not uncovered:
                    return chosen
        return None
