"""CoSKQ algorithms: the paper's owner-driven solvers plus baselines."""

from repro.algorithms.base import CoSKQAlgorithm, NNSet, SearchContext, minimal_subset
from repro.algorithms.bruteforce import BruteForceExact
from repro.algorithms.cao_appro import CaoAppro1, CaoAppro2
from repro.algorithms.cao_exact import BranchBoundExact, CaoExact
from repro.algorithms.cover import find_constrained_cover, iter_covers
from repro.algorithms.dia_appro import DIA_APPRO_RATIO, DiaAppro
from repro.algorithms.dia_exact import DiaExact
from repro.algorithms.maxsum_appro import MAXSUM_APPRO_RATIO, MaxSumAppro
from repro.algorithms.maxsum_exact import MaxSumExact
from repro.algorithms.nnset import NNSetAlgorithm
from repro.algorithms.owner_appro import OwnerRingApproximation
from repro.algorithms.owner_exact import OwnerDrivenExact
from repro.algorithms.registry import ALGORITHM_NAMES, make_algorithm
from repro.algorithms.topk import TopKCoSKQ
from repro.algorithms.sum_algorithms import SumExact, SumGreedy, sum_greedy_ratio_bound
from repro.algorithms.unified_appro import (
    UNIFIED_APPRO_RATIO_BOUNDS,
    UnifiedAppro,
    ratio_bound_for,
)
from repro.algorithms.unified_exact import UnifiedExact, make_exact_solver

__all__ = [
    "SearchContext",
    "NNSet",
    "CoSKQAlgorithm",
    "minimal_subset",
    "MaxSumExact",
    "MaxSumAppro",
    "MAXSUM_APPRO_RATIO",
    "DiaExact",
    "DiaAppro",
    "DIA_APPRO_RATIO",
    "OwnerDrivenExact",
    "OwnerRingApproximation",
    "BranchBoundExact",
    "CaoExact",
    "CaoAppro1",
    "CaoAppro2",
    "NNSetAlgorithm",
    "SumExact",
    "TopKCoSKQ",
    "SumGreedy",
    "sum_greedy_ratio_bound",
    "UnifiedAppro",
    "UnifiedExact",
    "UNIFIED_APPRO_RATIO_BOUNDS",
    "ratio_bound_for",
    "make_exact_solver",
    "BruteForceExact",
    "find_constrained_cover",
    "iter_covers",
    "make_algorithm",
    "ALGORITHM_NAMES",
]
