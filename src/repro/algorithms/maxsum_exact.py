"""MaxSum-Exact: the paper's exact algorithm for the MaxSum cost.

The distance owner-driven exact engine configured with
:class:`MaxSumCost`.  For this cost the owner decomposition reads
``cost(S) = α·r + (1−α)·d12`` with ``r`` the query distance owner's
distance and ``d12`` the pairwise owners' distance, so minimizing the
achievable diameter per owner (what the engine's bisection does) is
exactly the paper's Step-2/Step-3 search over pairwise distance owners.
"""

from __future__ import annotations

from repro.algorithms.base import SearchContext
from repro.algorithms.owner_exact import OwnerDrivenExact
from repro.cost.functions import MaxSumCost

__all__ = ["MaxSumExact"]


class MaxSumExact(OwnerDrivenExact):
    """Exact CoSKQ for the MaxSum cost (distance owner-driven)."""

    name = "maxsum-exact"

    def __init__(self, context: SearchContext, cost: MaxSumCost | None = None, **kwargs):
        super().__init__(context, cost if cost is not None else MaxSumCost(), **kwargs)
