"""Unified-A: one approximate algorithm for every unified-cost setting.

Extension module (DESIGN.md §6).  The follow-up literature observes that
the owner-driven approximation generalizes: iterate candidates for the
*key query-object distance contributor* (the object whose query distance
decides the query component — the farthest member for MAX and SUM
aggregates, the nearest for MIN), and complete each candidate into a
feasible set with a per-aggregate greedy:

- MAX / MIN aggregates: add the candidate nearest *to the contributor*
  covering an uncovered keyword — keeps the diameter term small;
- SUM aggregate: add the candidate with the best distance-per-new-keyword
  ratio inside the contributor's disk — the weighted-set-cover greedy
  that keeps the sum term small.

Proven ratios per instantiation are exported as
:data:`UNIFIED_APPRO_RATIO_BOUNDS` (the property tests check them
empirically against exact solvers):

========  =========
cost      ratio
========  =========
maxsum    1.375
dia       sqrt(3)
sum       H(|q.ψ|)
summax    H(|q.ψ|)
minmax    2
minmax2   2
max       1 (exact)
min       1 (exact)
========  =========
"""

from __future__ import annotations

import math
from typing import List

from repro.algorithms.base import CoSKQAlgorithm
from repro.algorithms.owner_appro import greedy_completion_near
from repro.cost.base import QueryAggregate
from repro.geometry.circle import Circle
from repro.index.signatures import shared_keywords
from repro.model.objects import SpatialObject
from repro.model.query import Query
from repro.model.result import CoSKQResult
from repro.utils.stats import harmonic_number

__all__ = ["UnifiedAppro", "UNIFIED_APPRO_RATIO_BOUNDS", "ratio_bound_for"]

UNIFIED_APPRO_RATIO_BOUNDS = {
    "maxsum": 1.375,
    "dia": math.sqrt(3.0),
    "minmax": 2.0,
    "minmax2": 2.0,
    "max": 1.0,
    "min": 1.0,
}


def ratio_bound_for(cost_name: str, query_size: int) -> float:
    """The proven Unified-A ratio for a cost name and query size."""
    if cost_name in ("sum", "summax"):
        return max(1.0, harmonic_number(query_size))
    return UNIFIED_APPRO_RATIO_BOUNDS.get(cost_name, math.inf)


class UnifiedAppro(CoSKQAlgorithm):
    """Key-contributor iteration + per-aggregate greedy completion."""

    name = "unified-appro"
    exact = False

    def solve(
        self, query: Query, initial_upper_bound: float | None = None
    ) -> CoSKQResult:
        # ``initial_upper_bound`` is accepted for interface uniformity
        # and ignored: the per-cost ratio table argues about this
        # search's own incumbent, not an external one.
        self._reset_counters()
        nn = self.context.nn_set(query)
        best: List[SpatialObject] = list(nn.objects)
        best_cost = self._evaluate(query, best)
        aggregate = self.cost.query_aggregate
        # MIN contributors may sit arbitrarily close to the query; for
        # MAX/SUM the farthest member can never be inside C(q, d_f).
        min_contributor_dist = 0.0 if aggregate is QueryAggregate.MIN else nn.d_f
        index = self.context.index
        for dist, contributor in index.nearest_relevant_iter(
            query.location, query.keywords
        ):
            self._checkpoint()
            if dist < min_contributor_dist:
                continue
            if self.cost.combine(dist, 0.0) >= best_cost:
                break
            self._bump("contributors_tried")
            candidate = self._complete(query, contributor, dist, aggregate)
            if candidate is None:
                continue
            cost_value = self._evaluate(query, candidate)
            if cost_value < best_cost:
                best_cost = cost_value
                best = candidate
        return self._result(best, best_cost)

    # -- completions -----------------------------------------------------------

    def _complete(
        self,
        query: Query,
        contributor: SpatialObject,
        dist: float,
        aggregate: QueryAggregate,
    ) -> List[SpatialObject] | None:
        uncovered = query.keywords - contributor.keywords
        if not uncovered:
            return [contributor]
        if aggregate is QueryAggregate.MIN:
            # Keep the contributor nearest: completion anywhere, chosen
            # close to the contributor to control the diameter.
            candidates = self.context.inverted.relevant_objects(uncovered)
        else:
            disk = Circle(query.location, dist)
            candidates = self.context.relevant_in_circle(disk, uncovered)
        self._bump("candidates_scanned", len(candidates))
        if aggregate is QueryAggregate.SUM:
            completion = self._ratio_greedy(query, uncovered, candidates)
        else:
            completion = greedy_completion_near(contributor, uncovered, candidates)
        if completion is None:
            return None
        return [contributor] + completion

    def _ratio_greedy(
        self,
        query: Query,
        uncovered: frozenset,
        candidates: List[SpatialObject],
    ) -> List[SpatialObject] | None:
        """Weighted-set-cover greedy: cheapest distance per new keyword."""
        remaining = set(uncovered)
        chosen: List[SpatialObject] = []
        chosen_ids: set[int] = set()
        while remaining:
            self._checkpoint()
            best = None
            best_key = None
            for obj in candidates:
                if obj.oid in chosen_ids:
                    continue
                gained = shared_keywords(obj.keywords, remaining)
                if not gained:
                    continue
                key = (
                    query.location.distance_to(obj.location) / len(gained),
                    obj.oid,
                )
                if best_key is None or key < best_key:
                    best_key = key
                    best = obj
            if best is None:
                return None
            chosen.append(best)
            chosen_ids.add(best.oid)
            remaining -= best.keywords
        return chosen
