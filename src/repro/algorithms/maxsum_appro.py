"""MaxSum-Appro: the paper's approximate algorithm for the MaxSum cost.

A thin configuration of the owner-driven approximation scheme
(:mod:`repro.algorithms.owner_appro`) on :class:`MaxSumCost`.  The
guarantee proved in the paper: when the iteration reaches the query
distance owner ``o*`` of an optimal set ``S*`` (it always does — owners
are enumerated in ascending distance up to the incumbent bound), every
greedily chosen object lies within ``diam(S*)`` of ``o*`` and within
``C(q, d(o*, q))``, and the lens geometry then caps the built set's cost
at **1.375** times the optimum.
"""

from __future__ import annotations

from repro.algorithms.owner_appro import OwnerRingApproximation
from repro.cost.functions import MaxSumCost
from repro.algorithms.base import SearchContext

__all__ = ["MaxSumAppro", "MAXSUM_APPRO_RATIO"]

#: The proven approximation ratio of MaxSum-Appro.
MAXSUM_APPRO_RATIO = 1.375


class MaxSumAppro(OwnerRingApproximation):
    """1.375-approximation for CoSKQ with the MaxSum cost."""

    name = "maxsum-appro"
    ratio = MAXSUM_APPRO_RATIO
    ratio_cost = "maxsum"

    def __init__(self, context: SearchContext, cost: MaxSumCost | None = None):
        super().__init__(context, cost if cost is not None else MaxSumCost())
