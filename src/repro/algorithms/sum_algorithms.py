"""Algorithms for the Sum cost (extension; Cao et al.'s third cost).

The Sum cost ``Σ_{o∈S} d(o, q)`` is additive over objects, which changes
the complexity landscape completely:

- :class:`SumExact` is a Dijkstra-style dynamic program over keyword
  bitmasks: a state is the set of covered query keywords, transitions add
  one relevant object, and the additive cost makes the first settlement
  of the full mask optimal.  Exponential in ``|q.ψ|`` only through the
  2^|q.ψ| mask space — polynomial in the dataset.
- :class:`SumGreedy` is the classical weighted-set-cover greedy (pick the
  object minimizing distance per newly covered keyword), carrying the
  ``H_{|q.ψ|}`` approximation guarantee.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Dict, List, Tuple

from repro.algorithms.base import CoSKQAlgorithm, SearchContext
from repro.cost.functions import SumCost
from repro.index.signatures import mask_of
from repro.model.objects import SpatialObject
from repro.model.query import Query
from repro.model.result import CoSKQResult
from repro.utils.stats import harmonic_number

__all__ = ["SumExact", "SumGreedy", "sum_greedy_ratio_bound"]


def sum_greedy_ratio_bound(query_size: int) -> float:
    """The proven bound ``H_{|q.ψ|}`` of the weighted-set-cover greedy."""
    return harmonic_number(query_size)


class _SumBase(CoSKQAlgorithm):
    """Shared setup: default cost and per-query candidate preparation."""

    def __init__(self, context: SearchContext, cost: SumCost | None = None):
        super().__init__(context, cost if cost is not None else SumCost())

    def _prepared(self, query: Query) -> List[Tuple[SpatialObject, float, int]]:
        """Relevant objects with their query distance and keyword mask.

        Objects whose relevant-keyword trace is dominated by a strictly
        cheaper object with a superset trace can never appear in an
        optimal Sum solution; deduplicating identical traces to the
        cheapest carrier is the cheap version of that pruning applied
        here.
        """
        self.context.check_feasible(query)
        # Global signature masks (repro.index.signatures): the trace key
        # is the object's keyword mask restricted to the query mask — a
        # bijective relabeling of the old per-query bit compilation, so
        # the same traces collapse to the same cheapest carrier.
        q_mask = mask_of(query.keywords)
        best_by_trace: Dict[int, Tuple[float, SpatialObject]] = {}
        for obj in self.context.inverted.relevant_objects(query.keywords):
            mask = mask_of(obj.keywords) & q_mask
            dist = query.location.distance_to(obj.location)
            cur = best_by_trace.get(mask)
            if cur is None or (dist, obj.oid) < (cur[0], cur[1].oid):
                best_by_trace[mask] = (dist, obj)
        return [(obj, dist, mask) for mask, (dist, obj) in best_by_trace.items()]


class SumExact(_SumBase):
    """Exact Sum-cost CoSKQ via Dijkstra over keyword masks."""

    name = "sum-exact"
    exact = True

    def solve(
        self, query: Query, initial_upper_bound: float | None = None
    ) -> CoSKQResult:
        self._reset_counters()
        candidates = self._prepared(query)
        full_mask = mask_of(query.keywords)
        # The additive cost only grows along a path, so any state at or
        # past the slacked external bound cannot reach a full mask
        # cheaper than the seed — while every prefix of the optimal path
        # costs at most the optimum and survives the cutoff.
        cutoff = self._pruning_bound(float("inf"), initial_upper_bound)
        counter = itertools.count()
        best_cost: Dict[int, float] = {0: 0.0}
        heap: List[Tuple[float, int, int, Tuple[SpatialObject, ...]]] = [
            (0.0, next(counter), 0, ())
        ]
        while heap:
            self._checkpoint()
            cost_so_far, _, mask, chosen = heapq.heappop(heap)
            if cost_so_far > best_cost.get(mask, float("inf")):
                continue  # stale entry
            self._bump("states_settled")
            if mask == full_mask:
                return self._result(list(chosen), cost_so_far)
            for obj, dist, obj_mask in candidates:
                new_mask = mask | obj_mask
                if new_mask == mask:
                    continue
                new_cost = cost_so_far + dist
                if new_cost >= cutoff:
                    continue
                if new_cost < best_cost.get(new_mask, float("inf")):
                    best_cost[new_mask] = new_cost
                    heapq.heappush(
                        heap, (new_cost, next(counter), new_mask, chosen + (obj,))
                    )
        raise AssertionError("feasible query must settle the full mask")


class SumGreedy(_SumBase):
    """``H_{|q.ψ|}``-approximate Sum-cost CoSKQ (weighted set cover)."""

    name = "sum-greedy"
    exact = False

    def solve(
        self, query: Query, initial_upper_bound: float | None = None
    ) -> CoSKQResult:
        # ``initial_upper_bound`` is accepted for interface uniformity
        # and ignored: the greedy's H_k guarantee argues about its own
        # picks, not about an external incumbent.
        self._reset_counters()
        candidates = self._prepared(query)
        full_mask = mask_of(query.keywords)
        mask = 0
        chosen: List[SpatialObject] = []
        total = 0.0
        while mask != full_mask:
            best = None
            best_key = None
            for obj, dist, obj_mask in candidates:
                gained = (obj_mask | mask) & ~mask
                if not gained:
                    continue
                key = (dist / gained.bit_count(), obj.oid)
                if best_key is None or key < best_key:
                    best_key = key
                    best = (obj, dist, obj_mask)
            assert best is not None, "feasible query must keep making progress"
            obj, dist, obj_mask = best
            self._bump("greedy_picks")
            chosen.append(obj)
            total += dist
            mask |= obj_mask
        return self._result(chosen, total)
