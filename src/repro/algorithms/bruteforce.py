"""Brute-force exact CoSKQ solver — the testing oracle.

Enumerates every irredundant cover of the query keywords over the
relevant objects and scores it with the configured cost function.  For
MIN-aggregate costs it additionally tries extending each cover by one
extra relevant object, since a redundant-but-close object can lower the
query component there (at most one extra can ever help: only the closest
chosen object contributes, and further extras merely inflate the
diameter).

Exponential; only usable on the small instances the property tests build,
which is its entire purpose.
"""

from __future__ import annotations

from typing import List, Optional

from repro.algorithms.base import CoSKQAlgorithm
from repro.algorithms.cover import iter_covers
from repro.cost.base import QueryAggregate
from repro.model.query import Query
from repro.model.result import CoSKQResult

__all__ = ["BruteForceExact"]


class BruteForceExact(CoSKQAlgorithm):
    """Exhaustive search over irredundant covers (plus MIN-cost extras)."""

    name = "bruteforce"
    exact = True

    def solve(
        self, query: Query, initial_upper_bound: Optional[float] = None
    ) -> CoSKQResult:
        # ``initial_upper_bound`` is accepted for interface uniformity
        # and deliberately ignored: the oracle must stay exhaustive so
        # differential tests can distrust everyone else's pruning.
        self._reset_counters()
        self.context.check_feasible(query)
        relevant = self.context.inverted.relevant_objects(query.keywords)
        best: Optional[List] = None
        best_cost = float("inf")
        handles_min = self.cost.query_aggregate is QueryAggregate.MIN
        for cover in iter_covers(query.keywords, relevant):
            self._bump("covers_enumerated")
            cost_value = self._evaluate(query, cover)
            if cost_value < best_cost:
                best_cost = cost_value
                best = list(cover)
            if handles_min:
                chosen_ids = {o.oid for o in cover}
                for extra in relevant:
                    if extra.oid in chosen_ids:
                        continue
                    extended = cover + [extra]
                    cost_value = self._evaluate(query, extended)
                    if cost_value < best_cost:
                        best_cost = cost_value
                        best = extended
        assert best is not None, "feasible query must yield at least one cover"
        return self._result(best, best_cost)
