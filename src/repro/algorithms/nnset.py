"""The nearest-neighbor-set baseline: return ``N(q)``.

``N(q)`` picks, for each query keyword ``t``, the object ``NN(q, t)``
nearest to the query that carries ``t``.  It is:

- Cao et al.'s first approximation for the MaxSum cost (3-approximate),
- 3-approximate for the Dia cost as well,
- *optimal* for the Max cost (each keyword is served by its closest
  possible carrier, and only the farthest query distance counts),
- the source of the universal lower bound ``d_f = max_{o∈N(q)} d(o, q)``
  that every other algorithm prunes with.
"""

from __future__ import annotations

from typing import Optional

from repro.algorithms.base import CoSKQAlgorithm
from repro.model.query import Query
from repro.model.result import CoSKQResult

__all__ = ["NNSetAlgorithm"]


class NNSetAlgorithm(CoSKQAlgorithm):
    """Return the deduplicated nearest-neighbor set ``N(q)``."""

    name = "nn-set"
    exact = False
    ratio = 3.0
    ratio_cost = "maxsum"

    def solve(
        self, query: Query, initial_upper_bound: Optional[float] = None
    ) -> CoSKQResult:
        # ``initial_upper_bound`` is accepted for interface uniformity
        # and ignored: N(q) is a fixed construction, not a search.
        self._reset_counters()
        nn = self.context.nn_set(query)
        self._bump("nn_lookups", query.size)
        cost_value = self._evaluate(query, nn.objects)
        return self._result(nn.objects, cost_value)
