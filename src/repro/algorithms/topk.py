"""Top-k CoSKQ: the k cheapest feasible sets (extension).

Cao et al. (TODS 2015) study a top-k variation of CoSKQ — instead of one
optimal set, report the ``k`` best distinct sets so a user can choose
among near-optimal alternatives.  This module provides it for every
*monotone* cost (SUM/MAX query aggregates) on top of the best-first
branch-and-bound machinery:

- partial covers are expanded in admissible-lower-bound order;
- for monotone costs a completed cover's bound *is* its true cost, so
  completed covers pop from the frontier in true cost order;
- the first ``k`` distinct completed covers popped are therefore exactly
  the top-k among irredundant covers (sets where every member contributed
  a new keyword when added — supersets padded with useless objects are
  not enumerated, matching what a user would want listed).

MIN-aggregate costs are rejected: their bound is not the partial cost and
the "one extra close object" trick used for the single-best search does
not give a total order over completions.
"""

from __future__ import annotations

import heapq
import itertools
import math
from typing import Dict, List, Tuple

from repro.algorithms.base import CoSKQAlgorithm, SearchContext
from repro.cost.base import CostFunction, QueryAggregate
from repro.errors import BudgetExceededError, InvalidParameterError
from repro.index.signatures import bits_of, mask_of
from repro.model.query import Query
from repro.model.result import CoSKQResult

__all__ = ["TopKCoSKQ"]


class TopKCoSKQ(CoSKQAlgorithm):
    """Enumerate the k cheapest distinct feasible sets in cost order."""

    name = "topk"
    exact = True

    #: Frontier-size safety valve.
    max_expansions = 2_000_000

    def __init__(self, context: SearchContext, cost: CostFunction, k: int = 3):
        if cost.query_aggregate is QueryAggregate.MIN:
            raise InvalidParameterError(
                "top-k CoSKQ supports monotone costs only (SUM/MAX aggregates)"
            )
        if k < 1:
            raise InvalidParameterError("k must be at least 1")
        super().__init__(context, cost)
        self.k = k

    def solve(  # repro: noqa(R5) — solve_topk resets
        self, query: Query, initial_upper_bound: float | None = None
    ) -> CoSKQResult:
        """The best set; use :meth:`solve_topk` for the full ranking.

        ``initial_upper_bound`` is accepted for interface uniformity and
        ignored: a bound on the *best* cost says nothing about the k-th,
        so pruning against it could truncate the ranking.
        """
        return self.solve_topk(query)[0]

    def solve_topk(self, query: Query) -> List[CoSKQResult]:
        """The k cheapest distinct feasible sets, ascending by cost.

        Returns fewer than k results when fewer distinct irredundant
        covers exist.
        """
        self._reset_counters()
        self.context.check_feasible(query)
        relevant = self.context.inverted.relevant_objects(query.keywords)
        qdist = {o.oid: query.location.distance_to(o.location) for o in relevant}
        # Keyword bookkeeping runs on signature bitmasks throughout: the
        # mask↔set bijection makes every cover test, branch choice and
        # uncovered-set update identical to the frozenset algebra this
        # replaces, and heap states carry a machine int instead of a
        # frozenset (the unique tiebreak counter means the covered field
        # is never compared).
        q_mask = mask_of(query.keywords)
        omask = {o.oid: mask_of(o.keywords) for o in relevant}
        by_keyword: Dict[int, List] = {t: [] for t in query.keywords}
        for obj in relevant:
            for t in bits_of(omask[obj.oid] & q_mask):
                by_keyword[t].append(obj)
        for lst in by_keyword.values():
            lst.sort(key=lambda o: (qdist[o.oid], o.oid))
        nn_dist = {t: qdist[by_keyword[t][0].oid] for t in query.keywords}

        counter = itertools.count()
        # state: (lb, tiebreak, chosen tuple, covered mask, qsum, qmax, diam)
        heap: List[Tuple[float, int, tuple, int, float, float, float]] = [
            (0.0, next(counter), (), 0, 0.0, 0.0, 0.0)
        ]
        found: List[CoSKQResult] = []
        seen: set = set()
        expansions = 0
        while heap and len(found) < self.k:
            self._checkpoint()
            lb, _, chosen, covered, qsum, qmax, diam = heapq.heappop(heap)
            if not q_mask & ~covered:
                key = frozenset(o.oid for o in chosen)
                if key in seen:
                    continue
                seen.add(key)
                self._bump("sets_emitted")
                found.append(
                    CoSKQResult.of(chosen, lb, self.name, counters=dict(self.counters))
                )
                continue
            expansions += 1
            self._bump("states_expanded")
            if expansions > self.max_expansions:
                raise BudgetExceededError(
                    "states_expanded",
                    self.max_expansions,
                    expansions,
                    counters=self.counters,
                )
            pending_rest = q_mask & ~covered
            branch = min(
                bits_of(pending_rest), key=lambda t: (len(by_keyword[t]), t)
            )
            chosen_ids = {o.oid for o in chosen}
            for obj in by_keyword[branch]:
                if obj.oid in chosen_ids:
                    continue
                d = qdist[obj.oid]
                new_diam = diam
                for member in chosen:
                    pair = obj.location.distance_to(member.location)
                    if pair > new_diam:
                        new_diam = pair
                new_qsum = qsum + d
                new_qmax = max(qmax, d)
                new_covered = covered | (omask[obj.oid] & q_mask)
                uncovered = pending_rest & ~omask[obj.oid]
                pending = max((nn_dist[t] for t in bits_of(uncovered)), default=0.0)
                if self.cost.query_aggregate is QueryAggregate.SUM:
                    q_bound = new_qsum + (pending if uncovered else 0.0)
                else:
                    q_bound = max(new_qmax, pending)
                child_lb = self.cost.combine(q_bound, new_diam)
                if math.isfinite(child_lb):
                    heapq.heappush(
                        heap,
                        (
                            child_lb,
                            next(counter),
                            chosen + (obj,),
                            new_covered,
                            new_qsum,
                            new_qmax,
                            new_diam,
                        ),
                    )
        if not found:
            raise AssertionError("feasible query must yield at least one set")
        return found
