"""Name-based algorithm registry for the CLI and the benchmark harness.

Each entry maps a stable name to a factory ``(context) -> algorithm``
with the algorithm's paper-default cost baked in; the harness can also
pass an explicit cost for the baselines that are adapted across costs
(Cao-Exact/Appro1/Appro2 in the Dia experiments).
"""

from __future__ import annotations

from typing import Callable, Dict, Optional

from repro.algorithms.base import CoSKQAlgorithm, SearchContext
from repro.algorithms.bruteforce import BruteForceExact
from repro.algorithms.cao_appro import CaoAppro1, CaoAppro2
from repro.algorithms.cao_exact import BranchBoundExact, CaoExact
from repro.algorithms.dia_appro import DiaAppro
from repro.algorithms.dia_exact import DiaExact
from repro.algorithms.maxsum_appro import MaxSumAppro
from repro.algorithms.maxsum_exact import MaxSumExact
from repro.algorithms.nnset import NNSetAlgorithm
from repro.algorithms.sum_algorithms import SumExact, SumGreedy
from repro.algorithms.topk import TopKCoSKQ
from repro.algorithms.unified_appro import UnifiedAppro
from repro.algorithms.unified_exact import UnifiedExact
from repro.cost.base import CostFunction
from repro.cost.functions import cost_by_name
from repro.errors import InvalidParameterError

__all__ = ["make_algorithm", "ALGORITHM_NAMES"]

Factory = Callable[[SearchContext, Optional[CostFunction]], CoSKQAlgorithm]


def _with_default(cls, default_cost_name: str) -> Factory:
    def factory(context: SearchContext, cost: Optional[CostFunction]) -> CoSKQAlgorithm:
        return cls(context, cost if cost is not None else cost_by_name(default_cost_name))

    return factory


_FACTORIES: Dict[str, Factory] = {
    # Paper algorithms (fixed costs).
    "maxsum-exact": lambda ctx, cost: MaxSumExact(ctx, cost),
    "maxsum-appro": lambda ctx, cost: MaxSumAppro(ctx, cost),
    "dia-exact": lambda ctx, cost: DiaExact(ctx, cost),
    "dia-appro": lambda ctx, cost: DiaAppro(ctx, cost),
    # Baselines (cost-generic; default to the paper's MaxSum).
    "cao-exact": _with_default(CaoExact, "maxsum"),
    "bnb-exact": _with_default(BranchBoundExact, "maxsum"),
    "cao-appro1": _with_default(CaoAppro1, "maxsum"),
    "cao-appro2": _with_default(CaoAppro2, "maxsum"),
    "nn-set": _with_default(NNSetAlgorithm, "maxsum"),
    # Extensions.
    "sum-exact": lambda ctx, cost: SumExact(ctx, cost),
    "sum-greedy": lambda ctx, cost: SumGreedy(ctx, cost),
    "unified-appro": _with_default(UnifiedAppro, "maxsum"),
    "unified-exact": _with_default(UnifiedExact, "maxsum"),
    "topk": _with_default(TopKCoSKQ, "maxsum"),
    # Oracle.
    "bruteforce": _with_default(BruteForceExact, "maxsum"),
}

ALGORITHM_NAMES = tuple(sorted(_FACTORIES))


def make_algorithm(
    name: str,
    context: SearchContext,
    cost: Optional[CostFunction] = None,
) -> CoSKQAlgorithm:
    """Instantiate a registered algorithm over ``context``.

    ``cost`` overrides the algorithm's default cost where that makes
    sense (the cost-generic baselines and extensions); the paper
    algorithms validate their fixed cost type themselves.
    """
    try:
        factory = _FACTORIES[name]
    except KeyError:
        raise InvalidParameterError(
            "unknown algorithm %r; known: %s" % (name, list(ALGORITHM_NAMES))
        ) from None
    return factory(context, cost)
