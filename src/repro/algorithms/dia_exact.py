"""Dia-Exact: the paper's exact algorithm for the Dia cost.

The distance owner-driven exact engine configured with :class:`DiaCost`.
The max-combiner gives the engine its fast path: once a feasible
completion with diameter at most the owner's query distance exists, the
owner's cost is settled at that distance and no diameter bisection is
needed (every diameter below ``r`` is cost-indifferent under
``max(r, d12)``).
"""

from __future__ import annotations

from repro.algorithms.base import SearchContext
from repro.algorithms.owner_exact import OwnerDrivenExact
from repro.cost.functions import DiaCost

__all__ = ["DiaExact"]


class DiaExact(OwnerDrivenExact):
    """Exact CoSKQ for the Dia cost (distance owner-driven)."""

    name = "dia-exact"

    def __init__(self, context: SearchContext, cost: DiaCost | None = None, **kwargs):
        super().__init__(context, cost if cost is not None else DiaCost(), **kwargs)
