"""Unified-E: one exact entry point for every unified-cost setting.

Extension module (DESIGN.md §6).  Dispatches each cost to the strongest
exact machinery available for its structure:

- MAX query aggregate (maxsum, dia, max) → the distance owner-driven
  engine of the core paper;
- pure Sum (additive, pairwise-free)      → the keyword-mask Dijkstra;
- everything else (summax, minmax, …)     → generic best-first
  branch-and-bound.

This mirrors how a unified system would serve arbitrary cost settings
while the structurally special ones keep their fast paths.
"""

from __future__ import annotations

from typing import Optional

from repro.algorithms.base import CoSKQAlgorithm, SearchContext
from repro.algorithms.cao_exact import BranchBoundExact
from repro.algorithms.owner_exact import OwnerDrivenExact
from repro.algorithms.sum_algorithms import SumExact
from repro.cost.base import CostFunction, QueryAggregate
from repro.cost.functions import SumCost
from repro.model.query import Query
from repro.model.result import CoSKQResult

__all__ = ["UnifiedExact", "make_exact_solver"]


def make_exact_solver(context: SearchContext, cost: CostFunction) -> CoSKQAlgorithm:
    """The strongest exact solver for this cost's structure."""
    if cost.query_aggregate is QueryAggregate.MAX:
        return OwnerDrivenExact(context, cost)
    if isinstance(cost, SumCost):
        return SumExact(context, cost)
    return BranchBoundExact(context, cost)


class UnifiedExact(CoSKQAlgorithm):
    """Structure-dispatching exact solver for any library cost."""

    name = "unified-exact"
    exact = True

    def __init__(self, context: SearchContext, cost: CostFunction):
        super().__init__(context, cost)
        self._delegate = make_exact_solver(context, cost)

    @property
    def delegate(self) -> CoSKQAlgorithm:
        """The solver this cost was dispatched to (for introspection)."""
        return self._delegate

    def solve(  # repro: noqa(R5) — delegate resets
        self, query: Query, initial_upper_bound: Optional[float] = None
    ) -> CoSKQResult:
        inner = self._delegate.solve(query, initial_upper_bound=initial_upper_bound)
        self.counters = dict(self._delegate.counters)
        return CoSKQResult.of(
            inner.objects, inner.cost, self.name, counters=dict(self.counters)
        )
