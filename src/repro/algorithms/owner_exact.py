"""The distance owner-driven exact search.

Shared engine for the paper's two exact algorithms (MaxSum-Exact and
Dia-Exact).  The key observation of the paper: the cost of a set ``S`` is
fully determined by its *distance owners* — the farthest-from-query
member (query distance owner, at distance ``r``) and the pair realizing
the maximum pairwise distance (``d12``) — as ``combine(r, d12)``.  So
instead of searching the exponential space of sets, search the space of
owners:

1. Seed the incumbent with ``N(q)`` (optionally with the owner-driven
   *approximate* solution via ``seed_with_appro`` — the paper seeds with
   its approximation; our ablation finds the exact search's own early
   owners tighten ``curCost`` just as fast, so plain ``N(q)`` is the
   default here).
2. Enumerate query-distance-owner candidates ``o`` in ascending
   ``d(o, q)``, restricted to the ring ``d_f ≤ d(o, q)`` and stopping
   once the owner distance alone prices every remaining owner out
   (``combine(d, 0) ≥ curCost``).
3. For a fixed owner, the optimal set is the feasible set inside
   ``C(q, r)`` containing ``o`` with the smallest diameter.  Candidate
   completions live in ``C(q, r) ∩ C(o, budget)`` where ``budget`` is the
   largest diameter that still beats the incumbent — the lens-region
   pruning of the paper.  The minimum achievable diameter is found by
   monotone bisection over the diameter cap: a cap is *feasible* iff a
   constrained cover exists (every pairwise distance ≤ cap), feasibility
   is monotone in the cap, and each successful probe snaps the upper end
   to the *realized* diameter of the cover it found.  This visits the
   same lens regions as the paper's explicit enumeration of pairwise
   distance owner pairs, with the enumeration replaced by bisection.
4. The true cost of every constructed set updates the incumbent.

Exactness holds up to the bisection tolerance (``1e-9`` relative, the
:attr:`OwnerDrivenExact.tolerance` attribute); distances are floats, so a
tolerance-free claim would be illusory anyway.

Constructor switches (`seed_with_appro`, `filter_candidates`,
`ring_pruning`) exist solely for the pruning-ablation benchmark.
"""

from __future__ import annotations

import bisect
import math
from array import array
from typing import Dict, List, Optional, Tuple

from repro.algorithms.base import CoSKQAlgorithm, SearchContext
from repro.algorithms.cover import CoverBudgetExceeded, find_constrained_cover
from repro.algorithms.owner_appro import OwnerRingApproximation
from repro.cost.base import CostFunction, QueryAggregate, pairwise_max_distance
from repro.geometry.circle import Circle
from repro.index.signatures import bits_of, mask_of, pack_masks
from repro.kernels import (
    DistanceOracle,
    distances_from,
    kernels_enabled,
    lens_gather,
    lens_lower_bound,
    pack_objects,
)
from repro.model.objects import SpatialObject
from repro.model.query import Query

__all__ = ["OwnerDrivenExact"]

#: Relative early-exit tolerance for the numeric ``combine`` inversions
#: below.  Both bisections keep a valid bracket invariant at every step
#: (``hi`` infeasible-side, ``lo`` feasible-side), so exiting once the
#: bracket width is negligible returns the same conservative endpoint a
#: fixed 100-iteration loop would — minus the dead iterations where the
#: bracket can no longer move a pruning decision.
_BISECTION_TOLERANCE = 1e-12


def _pairwise_budget(cost: CostFunction, query_component: float, bound: float) -> float:
    """``sup { c ≥ 0 : combine(query_component, c) < bound }`` (or -1).

    Numeric inversion (exponential search + bisection); ``combine`` is
    nondecreasing in the pairwise component for every cost in the
    library.  The returned value errs on the generous side, so it is safe
    to use as a pruning radius.
    """
    combine = cost.combine  # hoisted: the loops below run ~40 iterations
    if combine(query_component, 0.0) >= bound:
        return -1.0
    hi = max(bound, query_component, 1.0)
    for _ in range(200):
        if combine(query_component, hi) >= bound:
            break
        hi *= 2.0
    else:
        return math.inf  # cost ignores the pairwise component
    lo = 0.0
    # ``hi`` only shrinks below, so a threshold fixed at the initial
    # bracket is the loosest the per-iteration one ever gets — exiting
    # against it can only stop earlier, and ``hi`` stays on the generous
    # side throughout, so no safety is lost (only dead iterations past
    # the point where (lo+hi)/2 stops moving a pruning decision).
    tol = _BISECTION_TOLERANCE * (hi if hi > 1.0 else 1.0)
    for _ in range(100):
        mid = (lo + hi) / 2.0
        if combine(query_component, mid) < bound:
            lo = mid
        else:
            hi = mid
        if hi - lo <= tol:
            break
    return hi


def _indifferent_cap(cost: CostFunction, query_component: float, pairwise_lb: float) -> float:
    """The largest cap costing no more than ``pairwise_lb`` does.

    For additive combiners this is ``pairwise_lb`` itself; for max
    combiners every diameter up to the query component is free, so a
    first probe at that cap short-circuits the whole bisection (the Dia
    fast path).  Computed numerically from ``combine`` so it holds for
    any cost.
    """
    combine = cost.combine
    base = combine(query_component, pairwise_lb)
    hi = max(query_component, pairwise_lb, 1.0) * 2.0 + 1.0
    if combine(query_component, hi) <= base:
        return hi
    lo = pairwise_lb
    # Fixed at the initial bracket (see _pairwise_budget): ``lo`` is
    # always a certified-indifferent cap, so exiting earlier against the
    # loosest threshold stays on the conservative side.
    tol = _BISECTION_TOLERANCE * (hi if hi > 1.0 else 1.0)
    for _ in range(100):
        mid = (lo + hi) / 2.0
        if combine(query_component, mid) <= base:
            lo = mid
        else:
            hi = mid
        if hi - lo <= tol:
            break
    return lo


class OwnerDrivenExact(CoSKQAlgorithm):
    """Exact CoSKQ search by distance-owner enumeration.

    Requires a cost whose query aggregate is MAX (MaxSum, Dia, Max —
    the costs the owner decomposition applies to).
    """

    name = "owner-exact"
    exact = True

    #: Relative tolerance of the diameter bisection.
    tolerance = 1e-9

    def __init__(
        self,
        context: SearchContext,
        cost: CostFunction,
        seed_with_appro: bool = False,
        filter_candidates: bool = True,
        ring_pruning: bool = True,
        cover_node_budget: int = 2_000_000,
    ):
        if cost.query_aggregate is not QueryAggregate.MAX:
            raise ValueError(
                "owner-driven exact search needs a MAX query aggregate; "
                "got %s" % cost.query_aggregate
            )
        super().__init__(context, cost)
        self.seed_with_appro = seed_with_appro
        self.filter_candidates = filter_candidates
        self.ring_pruning = ring_pruning
        self.cover_node_budget = cover_node_budget
        #: Per-query memo of the keyword-relevant universe in traversal
        #: order, with packed coordinates and stored query distances —
        #: every owner's lens region is carved out of this one list
        #: instead of re-walking the index (see _lens_candidates).
        self._lens_cache: Optional[tuple] = None

    # -- main loop -----------------------------------------------------------

    def solve(
        self, query: Query, initial_upper_bound: Optional[float] = None
    ) -> CoSKQResult:
        self._reset_counters()
        self._lens_cache = None  # memo is valid for one query only
        nn = self.context.nn_set(query)
        best: List[SpatialObject] = list(nn.objects)
        best_cost = self._evaluate(query, best)
        if self.seed_with_appro:
            appro = OwnerRingApproximation(self.context, self.cost)
            seeded = appro.solve(query)
            self._bump("seed_owners_tried", appro.counters.get("owners_tried", 0))
            if seeded.cost < best_cost:
                best_cost = seeded.cost
                best = list(seeded.objects)
        # The achieved incumbent (returned as-is when nothing beats it)
        # and the pruning bound are tracked separately: the external
        # bound is only ever a cutoff, never a result.
        bound = self._pruning_bound(best_cost, initial_upper_bound)

        d_f = nn.d_f if self.ring_pruning else 0.0
        index = self.context.index
        for dist, owner in index.nearest_relevant_iter(query.location, query.keywords):
            self._checkpoint()
            if dist < d_f:
                continue
            if self.cost.combine(dist, 0.0) >= bound:
                break
            self._bump("owners_tried")
            outcome = self._best_for_owner(query, owner, dist, bound)
            if outcome is not None:
                owner_set, owner_cost = outcome
                if owner_cost < best_cost:
                    best_cost = owner_cost
                    best = owner_set
                    if best_cost < bound:
                        bound = best_cost
        return self._result(best, best_cost)

    # -- per-owner optimization ------------------------------------------------

    def _best_for_owner(
        self,
        query: Query,
        owner: SpatialObject,
        r: float,
        cur_cost: float,
    ) -> Optional[Tuple[List[SpatialObject], float]]:
        """The cheapest feasible set owned by ``owner`` that beats ``cur_cost``."""
        uncovered = query.keywords - owner.keywords
        if not uncovered:
            singleton = [owner]
            return singleton, self._evaluate(query, singleton)

        budget = _pairwise_budget(self.cost, r, cur_cost)
        if budget <= 0.0:
            return None

        disk = Circle(query.location, r)
        packed = None
        if self.filter_candidates and not math.isinf(budget):
            # Candidates live in C(q, r) ∩ C(owner, budget): any farther
            # object would push the pairwise term past the incumbent.
            lens = self._lens_candidates(query, owner, r, budget, uncovered)
            if lens is not None:
                candidates, packed = lens
            else:
                candidates = self.context.index.relevant_in_region(
                    [disk, Circle(owner.location, budget)], uncovered
                )
        else:
            candidates = self.context.relevant_in_circle(disk, uncovered)
        self._bump("candidates_scanned", len(candidates))

        # One oracle per owner: the candidate↔owner vector is filled now
        # (each entry is needed by the first probe's anchor filter), the
        # candidate pairwise rows fill lazily on first use, and every
        # bisection probe below reuses both instead of rebuilding them.
        if kernels_enabled():
            if packed is not None:
                oracle = DistanceOracle(owner.location, candidates, *packed)
            else:
                oracle = DistanceOracle(owner.location, candidates)
        else:
            oracle = None

        lower = self._diameter_lower_bound(owner, uncovered, candidates, oracle)
        if lower is None:
            return None  # some keyword has no candidate near this owner
        if self.cost.combine(r, lower) >= cur_cost:
            return None

        if not math.isinf(budget):
            cap_hi = budget
        elif oracle is not None:
            cap_hi = oracle.max_anchor_distance() * 2.0
        else:
            cap_hi = max(
                (owner.location.distance_to(c.location) for c in candidates),
                default=0.0,
            ) * 2.0
        probe = self._probe(uncovered, candidates, owner, cap_hi, oracle)
        if probe is None:
            return None
        best_set, best_diam = probe
        self._bump("covers_found")

        # Fast path: any diameter up to the indifferent cap costs the
        # same as the lower bound — one probe settles the owner.
        cap0 = _indifferent_cap(self.cost, r, lower)
        if best_diam > cap0:
            settled = self._probe(uncovered, candidates, owner, cap0, oracle)
            if settled is not None:
                best_set, best_diam = settled
            else:
                lo = cap0
                hi = best_diam
                tol = self.tolerance * max(1.0, hi)
                while hi - lo > tol:
                    self._bump("bisection_probes")
                    mid = (lo + hi) / 2.0
                    shrunk = self._probe(uncovered, candidates, owner, mid, oracle)
                    if shrunk is None:
                        lo = mid
                    else:
                        best_set, best_diam = shrunk
                        hi = best_diam
        return best_set, self._evaluate(query, best_set)

    def _lens_candidates(
        self,
        query: Query,
        owner: SpatialObject,
        r: float,
        budget: float,
        uncovered: frozenset,
    ) -> Optional[Tuple[List[SpatialObject], Tuple]]:
        """Kernel-path replacement for the per-owner region traversal.

        The keyword-relevant universe (in index traversal order, with
        packed coordinates and stored query distances) is fetched once
        per query; each owner's ``C(q, r) ∩ C(owner, budget)`` lens is
        then a flat guarded scan over it.  Because filtering preserves
        the traversal order and every disk test compares the very same
        ``math.hypot`` values, the result list is element-for-element
        identical to ``relevant_in_region([disk, owner_disk], uncovered)``.
        Returns ``(candidates, (xs, ys, anchor_d))`` — coordinates and
        exact owner distances are gathered while filtering, so the
        per-owner :class:`DistanceOracle` neither re-packs nor re-measures
        them.  None (fall back to the traversal) when the kernels are
        off or the index does not expose :meth:`relevant_objects`.
        """
        if not kernels_enabled():
            return None
        cache = self._lens_cache
        if cache is None:
            fetch = getattr(self.context.index, "relevant_objects", None)
            if fetch is None:
                return None
            universe = fetch(query.keywords)
            xs, ys = pack_objects(universe)
            dq = distances_from(query.location.x, query.location.y, xs, ys)
            # Universe indices sorted by query distance: a bisect gives
            # each owner's C(q, r) members without scanning the rest.
            order = sorted(range(len(universe)), key=dq.__getitem__)
            sorted_dq = [dq[i] for i in order]
            # Global signature masks (repro.index.signatures): the
            # per-owner keyword filter below is a machine-int AND
            # instead of a frozenset intersection.  ``uncovered ⊆
            # query.keywords ⊆ keywords(universe member)`` relevance
            # means a nonzero AND is exactly "shares a keyword with
            # ``uncovered``" — no per-query bit compilation needed.
            masks = pack_masks(universe)
            cache = self._lens_cache = (universe, xs, ys, order, sorted_dq, masks)
        universe, xs, ys, order, sorted_dq, masks = cache
        # All i with dq[i] <= r — exactly the query-disk membership test.
        # The annulus floor (triangle inequality with guard margins) only
        # drops points certain to fail the exact owner-disk test below.
        start = bisect.bisect_left(sorted_dq, lens_lower_bound(r, budget))
        prefix = order[start : bisect.bisect_right(sorted_dq, r)]
        unc = mask_of(uncovered)
        loc = owner.location
        hits, dists = lens_gather(prefix, masks, unc, loc.x, loc.y, xs, ys, budget)
        # Universe indices are traversal-ordered, so sorting the
        # surviving indices restores the traversal output order (the
        # owner distances ride along for the oracle's anchor vector).
        out: List[SpatialObject] = []
        cxs = array("d")
        cys = array("d")
        anchor_d = array("d")
        for i, d in sorted(zip(hits, dists)):
            out.append(universe[i])
            cxs.append(xs[i])
            cys.append(ys[i])
            anchor_d.append(d)
        return out, (cxs, cys, anchor_d)

    def _probe(
        self,
        uncovered: frozenset,
        candidates: List[SpatialObject],
        owner: SpatialObject,
        cap: float,
        oracle: Optional[DistanceOracle] = None,
    ) -> Optional[Tuple[List[SpatialObject], float]]:
        """Try covering under a diameter cap; return (set, true diameter)."""
        self._bump("cover_probes")
        try:
            cover = find_constrained_cover(
                uncovered,
                candidates,
                anchors=[owner],
                pair_cap=cap,
                node_budget=self.cover_node_budget,
                oracle=oracle,
            )
        except CoverBudgetExceeded:
            self._bump("cover_budget_exceeded")
            return None
        if cover is None:
            return None
        full = [owner] + cover
        if oracle is not None:
            diam = oracle.diameter_with_anchor([oracle.index_of(o) for o in cover])
        else:
            diam = pairwise_max_distance(full)
        return full, diam

    @staticmethod
    def _diameter_lower_bound(
        owner: SpatialObject,
        uncovered: frozenset,
        candidates: List[SpatialObject],
        oracle: Optional[DistanceOracle] = None,
    ) -> Optional[float]:
        """``max_t min_{candidate covering t} d(candidate, owner)``.

        Every feasible completion contains, for each uncovered keyword, an
        object at least this far from the owner, so no set owned by
        ``owner`` has a smaller diameter.  None when some keyword has no
        candidate at all.
        """
        anchor_d = oracle.anchor_d if oracle is not None else None
        u_mask = mask_of(uncovered)
        best_per_keyword: Dict[int, float] = {}
        for i, cand in enumerate(candidates):
            if anchor_d is not None:
                d = anchor_d[i]
            else:
                d = owner.location.distance_to(cand.location)
            for t in bits_of(mask_of(cand.keywords) & u_mask):
                cur = best_per_keyword.get(t)
                if cur is None or d < cur:
                    best_per_keyword[t] = d
        if len(best_per_keyword) < len(uncovered):
            return None
        return max(best_per_keyword.values())
