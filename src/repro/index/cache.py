"""A bounded memoizing wrapper around any :class:`SpatialTextIndex`.

The distance owner-driven search hammers a small set of index
primitives — ``keyword_nn``, ``nearest_neighbor_set`` and the disk/region
retrievals — and a production query stream repeats them constantly:
nearby queries share nearest neighbors, repeated queries share their
whole ``N(q)``.  :class:`CachingIndex` memoizes those lookups behind the
same :class:`~repro.index.protocol.SpatialTextIndex` surface, so every
algorithm (and the whole :mod:`repro.exec` resilience stack) benefits
without change.

Design constraints the wrapper honors:

- **Canonical keys.**  Every cache key is built from primitive values
  (coordinates, radii, frozen keyword sets) rather than object identity,
  so two :class:`~repro.geometry.point.Point` instances at the same
  location share an entry.  Region keys sort their circles — disk
  intersection is order-independent.
- **Defensive snapshots.**  Mutable return values (lists, dicts) are
  stored as immutable snapshots and handed back as fresh copies, so a
  caller that sorts or mutates its result can never poison later hits.
- **Bounded memory.**  One shared LRU across all methods, ``capacity``
  entries; evictions are counted, never silent.
- **Honest stats.**  ``stats`` carries hits/misses/evictions plus the
  ``uncached`` count of pass-through calls; hit rates feed the
  ``parallel_study`` benchmark and batch reports.

``nearest_relevant_iter`` is deliberately *not* cached: it returns a
lazy, possibly unbounded iterator that callers consume partially, so
memoizing it would either change laziness semantics or buffer an
unbounded prefix.  It delegates directly and counts as ``uncached``.

- **Thread safety.**  The LRU map and its counters are guarded by one
  lock so the threaded serving daemon (:mod:`repro.serve`) can share a
  cache across request handlers and read consistent ``/stats``
  snapshots.  The expensive ``compute`` of a miss runs *outside* the
  lock (two racing misses may compute twice; the first insert wins and
  both callers see the canonical snapshot), so concurrency is never
  serialized on index work.  The lock is created per instance and never
  pickled — caches are built worker-side from a
  :class:`~repro.parallel.spec.CacheSpec`, never shipped.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import (
    Callable,
    Dict,
    FrozenSet,
    Iterator,
    List,
    Optional,
    Sequence,
    Tuple,
)

from repro.errors import InvalidParameterError
from repro.geometry.circle import Circle
from repro.geometry.point import Point
from repro.index.protocol import SpatialTextIndex
from repro.model.dataset import Dataset
from repro.model.objects import SpatialObject
from repro.model.query import Query

__all__ = ["CacheStats", "CachingIndex", "DEFAULT_CACHE_CAPACITY"]

#: Default LRU capacity (entries across all memoized methods).
DEFAULT_CACHE_CAPACITY = 4096


@dataclass
class CacheStats:
    """Counters for one cache: lookups served, recomputed, evicted."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    #: Calls on methods the cache deliberately passes through.
    uncached: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of cacheable lookups served from memory (0 when idle)."""
        return self.hits / self.lookups if self.lookups else 0.0

    def as_dict(self, prefix: str = "") -> Dict[str, int]:
        """Flat integer counters, optionally key-prefixed for merging."""
        return {
            prefix + "hits": self.hits,
            prefix + "misses": self.misses,
            prefix + "evictions": self.evictions,
            prefix + "uncached": self.uncached,
        }


def _circle_key(circle: Circle) -> Tuple[float, float, float]:
    return (circle.center.x, circle.center.y, circle.radius)


class CachingIndex:
    """Memoize index lookups behind the :class:`SpatialTextIndex` surface.

    Structurally conforms to the protocol, so it drops into
    :meth:`~repro.algorithms.base.SearchContext.with_index` and every
    solver runs against it unchanged.  Correctness requires solvers to
    treat the index as read-only — enforced by lint rule R7
    (``docs/STATIC_ANALYSIS.md``).
    """

    def __init__(
        self,
        inner: SpatialTextIndex,
        capacity: int = DEFAULT_CACHE_CAPACITY,
    ):
        if capacity < 1:
            raise InvalidParameterError("cache capacity must be >= 1")
        self.inner = inner
        self.capacity = capacity
        self.stats = CacheStats()
        self._entries: "OrderedDict[Tuple[object, ...], object]" = OrderedDict()
        # Guards _entries and stats; see "Thread safety" in the module
        # docstring.  An RLock so clear()/len() compose under callers
        # that already hold it.
        self._lock = threading.RLock()

    @classmethod
    def build(cls, dataset: Dataset, max_entries: int = 16) -> "CachingIndex":
        """Caches wrap a built index; direct builds are a usage error."""
        raise InvalidParameterError(
            "CachingIndex wraps an existing index: CachingIndex(inner)"
        )

    # -- the LRU core -----------------------------------------------------------

    def _memoized(
        self, key: Tuple[object, ...], compute: Callable[[], object]
    ) -> object:
        with self._lock:
            entry = self._entries.get(key)
            if entry is not None or key in self._entries:
                self.stats.hits += 1
                self._entries.move_to_end(key)
                return entry
            self.stats.misses += 1
        # The miss computes outside the lock: index lookups are the
        # expensive part, and serializing them would defeat the threaded
        # server.  A racing miss may compute the same value; the first
        # insert wins and stays canonical.
        value = compute()
        with self._lock:
            existing = self._entries.get(key)
            if existing is not None or key in self._entries:
                return existing
            self._entries[key] = value
            if len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
                self.stats.evictions += 1
        return value

    def clear(self) -> None:
        """Drop every entry (stats are kept — they describe the lifetime)."""
        with self._lock:
            self._entries.clear()

    def stats_dict(self, prefix: str = "") -> Dict[str, int]:
        """A consistent counter snapshot (all four read under the lock)."""
        with self._lock:
            return self.stats.as_dict(prefix)

    def __len__(self) -> int:
        return len(self.inner)

    # -- memoized SpatialTextIndex surface --------------------------------------

    def keyword_nn(
        self, point: Point, keyword_id: int
    ) -> Tuple[float, SpatialObject] | None:
        key = ("nn", point.x, point.y, keyword_id)
        return self._memoized(
            key, lambda: self.inner.keyword_nn(point, keyword_id)
        )

    def nearest_relevant_iter(
        self, point: Point, keywords: FrozenSet[int], within: Circle | None = None
    ) -> Iterator[Tuple[float, SpatialObject]]:
        # Lazy iterator: cannot be memoized without changing semantics.
        with self._lock:
            self.stats.uncached += 1
        return self.inner.nearest_relevant_iter(point, keywords, within)

    def nearest_neighbor_set(
        self, query: Query
    ) -> Dict[int, Tuple[float, SpatialObject]]:
        key = ("nnset", query.location.x, query.location.y, query.keywords)
        snapshot = self._memoized(
            key, lambda: dict(self.inner.nearest_neighbor_set(query))
        )
        return dict(snapshot)

    def relevant_in_circle(
        self, circle: Circle, keywords: FrozenSet[int]
    ) -> List[SpatialObject]:
        key = ("circle", _circle_key(circle), keywords)
        snapshot = self._memoized(
            key, lambda: tuple(self.inner.relevant_in_circle(circle, keywords))
        )
        return list(snapshot)

    def relevant_in_region(
        self, circles: Sequence[Circle], keywords: FrozenSet[int]
    ) -> List[SpatialObject]:
        key = (
            "region",
            tuple(sorted(_circle_key(c) for c in circles)),
            keywords,
        )
        snapshot = self._memoized(
            key, lambda: tuple(self.inner.relevant_in_region(circles, keywords))
        )
        return list(snapshot)

    def relevant_objects(self, keywords: FrozenSet[int]) -> List[SpatialObject]:
        key = ("relevant", keywords)
        snapshot = self._memoized(
            key, lambda: tuple(self.inner.relevant_objects(keywords))
        )
        return list(snapshot)

    def objects_in_circle(self, circle: Circle) -> List[SpatialObject]:
        key = ("objects", _circle_key(circle))
        snapshot = self._memoized(
            key, lambda: tuple(self.inner.objects_in_circle(circle))
        )
        return list(snapshot)

    def __repr__(self) -> str:
        return "CachingIndex(%r, capacity=%d, hits=%d, misses=%d)" % (
            self.inner,
            self.capacity,
            self.stats.hits,
            self.stats.misses,
        )
