"""A linear-scan "index" sharing the IR-tree query interface.

Two uses:

- it is the oracle the property-based tests compare the R-tree/IR-tree
  against (any disagreement is an index bug);
- it is the no-index baseline of the ``ablation_index`` benchmark, showing
  what the IR-tree buys the CoSKQ algorithms.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterator, List, Optional, Tuple

from repro.errors import InfeasibleQueryError
from repro.geometry.circle import Circle
from repro.geometry.point import Point
from repro.model.dataset import Dataset
from repro.model.objects import SpatialObject
from repro.model.query import Query

__all__ = ["LinearScanIndex"]


class LinearScanIndex:
    """Answers the IR-tree query mix by scanning the whole dataset."""

    def __init__(self, dataset: Dataset):
        self._objects = list(dataset.objects)

    @classmethod
    def build(cls, dataset: Dataset, max_entries: int | None = None) -> "LinearScanIndex":
        """Signature-compatible with :meth:`IRTree.build`."""
        return cls(dataset)

    def __len__(self) -> int:
        return len(self._objects)

    def nearest_relevant_iter(
        self, point: Point, keywords: FrozenSet[int], within: Circle | None = None
    ) -> Iterator[Tuple[float, SpatialObject]]:
        """Relevant objects by ascending distance (full sort)."""
        hits = [
            (point.distance_to(o.location), o.oid, o)
            for o in self._objects
            if not o.keywords.isdisjoint(keywords)
            and (within is None or within.contains(o.location))
        ]
        hits.sort(key=lambda t: (t[0], t[1]))
        for dist, _, obj in hits:
            yield dist, obj

    def relevant_in_region(
        self, circles, keywords: FrozenSet[int]
    ) -> List[SpatialObject]:
        """Relevant objects inside the intersection of all ``circles``."""
        return [
            o
            for o in self._objects
            if not o.keywords.isdisjoint(keywords)
            and all(c.contains(o.location) for c in circles)
        ]

    def relevant_objects(self, keywords: FrozenSet[int]) -> List[SpatialObject]:
        """Every object carrying any keyword of ``keywords`` (scan order)."""
        return [o for o in self._objects if not o.keywords.isdisjoint(keywords)]

    def keyword_nn(
        self, point: Point, keyword_id: int
    ) -> Optional[Tuple[float, SpatialObject]]:
        """Nearest object carrying ``keyword_id`` (ties by object id)."""
        best: Optional[Tuple[float, int, SpatialObject]] = None
        for obj in self._objects:
            if keyword_id in obj.keywords:
                d = point.distance_to(obj.location)
                key = (d, obj.oid, obj)
                if best is None or key[:2] < best[:2]:
                    best = key
        if best is None:
            return None
        return best[0], best[2]

    def nearest_neighbor_set(
        self, query: Query
    ) -> Dict[int, Tuple[float, SpatialObject]]:
        """``N(q)`` by linear scan; raises on uncoverable keywords."""
        out: Dict[int, Tuple[float, SpatialObject]] = {}
        missing: List[int] = []
        for t in query.keywords:
            hit = self.keyword_nn(query.location, t)
            if hit is None:
                missing.append(t)
            else:
                out[t] = hit
        if missing:
            raise InfeasibleQueryError(missing)
        return out

    def relevant_in_circle(
        self, circle: Circle, keywords: FrozenSet[int]
    ) -> List[SpatialObject]:
        """Relevant objects inside the closed disk."""
        return [
            o
            for o in self._objects
            if not o.keywords.isdisjoint(keywords) and circle.contains(o.location)
        ]

    def objects_in_circle(self, circle: Circle) -> List[SpatialObject]:
        """All objects inside the closed disk."""
        return [o for o in self._objects if circle.contains(o.location)]
