"""A linear-scan "index" sharing the IR-tree query interface.

Two uses:

- it is the oracle the property-based tests compare the R-tree/IR-tree
  against (any disagreement is an index bug);
- it is the no-index baseline of the ``ablation_index`` benchmark, showing
  what the IR-tree buys the CoSKQ algorithms.

With signatures enabled the scan filters by precomputed keyword masks
and serves ``nearest_relevant_iter`` from a lazy ``heapq`` heap, so a
consumer that breaks after the first few neighbours pays O(n + k·log n)
instead of the full O(n·log n) sort.  The pop order equals the sorted
order because ``(distance, oid)`` is a total order over the hits.
"""

from __future__ import annotations

import heapq
from typing import Dict, FrozenSet, Iterator, List, Optional, Tuple

from repro.errors import InfeasibleQueryError
from repro.geometry.circle import Circle
from repro.geometry.point import Point
from repro.index.signatures import mask_of, pack_masks, signatures_enabled
from repro.model.dataset import Dataset
from repro.model.objects import SpatialObject
from repro.model.query import Query

__all__ = ["LinearScanIndex"]


class LinearScanIndex:
    """Answers the IR-tree query mix by scanning the whole dataset."""

    def __init__(self, dataset: Dataset):
        self._objects = list(dataset.objects)
        #: Keyword bitmasks parallel to ``_objects`` — always built;
        #: ``signatures_enabled()`` only selects which filter runs.
        self._masks = pack_masks(self._objects)

    @classmethod
    def build(cls, dataset: Dataset, max_entries: int | None = None) -> "LinearScanIndex":
        """Signature-compatible with :meth:`IRTree.build`."""
        return cls(dataset)

    def __len__(self) -> int:
        return len(self._objects)

    def nearest_relevant_iter(
        self, point: Point, keywords: FrozenSet[int], within: Circle | None = None
    ) -> Iterator[Tuple[float, SpatialObject]]:
        """Relevant objects by ascending ``(distance, oid)``."""
        if signatures_enabled():
            w_mask = mask_of(keywords)
            masks = self._masks
            heap = [
                (point.distance_to(o.location), o.oid, o)
                for i, o in enumerate(self._objects)
                if masks[i] & w_mask
                and (within is None or within.contains(o.location))
            ]
            heapq.heapify(heap)
            while heap:
                dist, _, obj = heapq.heappop(heap)
                yield dist, obj
            return
        hits = [
            (point.distance_to(o.location), o.oid, o)
            for o in self._objects
            if not o.keywords.isdisjoint(keywords)  # repro: noqa(R9) — toggle-off baseline
            and (within is None or within.contains(o.location))
        ]
        hits.sort(key=lambda t: (t[0], t[1]))
        for dist, _, obj in hits:
            yield dist, obj

    def relevant_in_region(
        self, circles, keywords: FrozenSet[int]
    ) -> List[SpatialObject]:
        """Relevant objects inside the intersection of all ``circles``."""
        if signatures_enabled():
            w_mask = mask_of(keywords)
            masks = self._masks
            return [
                o
                for i, o in enumerate(self._objects)
                if masks[i] & w_mask
                and all(c.contains(o.location) for c in circles)
            ]
        return [
            o
            for o in self._objects
            if not o.keywords.isdisjoint(keywords)  # repro: noqa(R9) — toggle-off baseline
            and all(c.contains(o.location) for c in circles)
        ]

    def relevant_objects(self, keywords: FrozenSet[int]) -> List[SpatialObject]:
        """Every object carrying any keyword of ``keywords`` (scan order)."""
        if signatures_enabled():
            w_mask = mask_of(keywords)
            masks = self._masks
            return [o for i, o in enumerate(self._objects) if masks[i] & w_mask]
        return [
            o
            for o in self._objects
            if not o.keywords.isdisjoint(keywords)  # repro: noqa(R9) — toggle-off baseline
        ]

    def keyword_nn(
        self, point: Point, keyword_id: int
    ) -> Optional[Tuple[float, SpatialObject]]:
        """Nearest object carrying ``keyword_id`` (ties by object id)."""
        use_masks = signatures_enabled()
        bit = 1 << keyword_id
        masks = self._masks
        best: Optional[Tuple[float, int, SpatialObject]] = None
        for i, obj in enumerate(self._objects):
            if use_masks:
                if not masks[i] & bit:
                    continue
            elif keyword_id not in obj.keywords:
                continue
            d = point.distance_to(obj.location)
            key = (d, obj.oid, obj)
            if best is None or key[:2] < best[:2]:
                best = key
        if best is None:
            return None
        return best[0], best[2]

    def nearest_neighbor_set(
        self, query: Query
    ) -> Dict[int, Tuple[float, SpatialObject]]:
        """``N(q)`` by linear scan; raises on uncoverable keywords."""
        out: Dict[int, Tuple[float, SpatialObject]] = {}
        missing: List[int] = []
        for t in query.keywords:
            hit = self.keyword_nn(query.location, t)
            if hit is None:
                missing.append(t)
            else:
                out[t] = hit
        if missing:
            raise InfeasibleQueryError(missing)
        return out

    def relevant_in_circle(
        self, circle: Circle, keywords: FrozenSet[int]
    ) -> List[SpatialObject]:
        """Relevant objects inside the closed disk."""
        if signatures_enabled():
            w_mask = mask_of(keywords)
            masks = self._masks
            return [
                o
                for i, o in enumerate(self._objects)
                if masks[i] & w_mask and circle.contains(o.location)
            ]
        return [
            o
            for o in self._objects
            if not o.keywords.isdisjoint(keywords)  # repro: noqa(R9) — toggle-off baseline
            and circle.contains(o.location)
        ]

    def objects_in_circle(self, circle: Circle) -> List[SpatialObject]:
        """All objects inside the closed disk."""
        return [o for o in self._objects if circle.contains(o.location)]
