"""Inverted index: keyword id → posting list of object ids.

The exact algorithms enumerate candidate covers keyword by keyword; the
inverted index supplies, for each keyword, the objects carrying it
(optionally restricted to a region through the caller's filters).  It also
answers the feasibility pre-check — a query is infeasible iff some query
keyword has an empty posting list.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, List, Sequence

from repro.index.signatures import keywords_of, mask_of, signatures_enabled
from repro.model.dataset import Dataset
from repro.model.objects import SpatialObject

__all__ = ["InvertedIndex"]


class InvertedIndex:
    """Posting lists over a dataset, built once and then read-only."""

    __slots__ = ("_dataset", "_postings", "_present_mask")

    def __init__(self, dataset: Dataset):
        self._dataset = dataset
        postings: Dict[int, List[int]] = {}
        present_mask = 0
        for obj in dataset:
            for k in obj.keywords:
                postings.setdefault(k, []).append(obj.oid)
            present_mask |= mask_of(obj.keywords)
        self._postings = postings
        #: Bitmask of every keyword carried by at least one object.
        self._present_mask = present_mask

    @property
    def dataset(self) -> Dataset:
        return self._dataset

    def posting_list(self, keyword_id: int) -> Sequence[int]:
        """Object ids carrying ``keyword_id`` (ascending; possibly empty)."""
        return self._postings.get(keyword_id, ())

    def objects_with(self, keyword_id: int) -> List[SpatialObject]:
        """Objects carrying ``keyword_id``."""
        objects = self._dataset.objects
        return [objects[oid] for oid in self.posting_list(keyword_id)]

    def document_frequency(self, keyword_id: int) -> int:
        """Number of objects carrying ``keyword_id``."""
        return len(self._postings.get(keyword_id, ()))

    def missing_keywords(self, keyword_ids: Iterable[int]) -> FrozenSet[int]:
        """The subset of ``keyword_ids`` carried by no object at all."""
        if signatures_enabled():
            return keywords_of(mask_of(keyword_ids) & ~self._present_mask)
        return frozenset(k for k in keyword_ids if k not in self._postings)

    def relevant_objects(self, keyword_ids: FrozenSet[int]) -> List[SpatialObject]:
        """All objects carrying at least one keyword of ``keyword_ids``.

        This is the paper's relevant-object set ``O_q``; each object is
        returned once even if it matches several keywords.
        """
        seen: set[int] = set()
        objects = self._dataset.objects
        out: List[SpatialObject] = []
        for k in keyword_ids:
            for oid in self._postings.get(k, ()):
                if oid not in seen:
                    seen.add(oid)
                    out.append(objects[oid])
        return out

    def rarest_keyword(self, keyword_ids: Iterable[int]) -> int:
        """The keyword of ``keyword_ids`` with the fewest postings.

        Exact cover enumeration branches on it first to keep the search
        tree narrow.  Ties broken by keyword id for determinism.
        """
        best_k = None
        best = None
        for k in keyword_ids:
            df = self.document_frequency(k)
            key = (df, k)
            if best is None or key < best:
                best = key
                best_k = k
        if best_k is None:
            raise ValueError("rarest_keyword() of an empty keyword collection")
        return best_k
