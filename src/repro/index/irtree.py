"""The IR-tree: an R-tree whose nodes carry per-subtree keyword summaries.

The IR-tree (Cong et al., VLDB 2009) is the index the CoSKQ paper runs
on.  Each node stores, besides its MBR, the union of the keyword sets in
its subtree (a compact stand-in for the node's inverted file — sufficient
for the boolean keyword containment tests CoSKQ needs).  This enables:

- ``keyword_nn(p, t)`` — the nearest object to ``p`` carrying keyword
  ``t`` (the paper's ``NN(p, t)``), via best-first traversal that skips
  subtrees whose keyword summary misses ``t``;
- ``nearest_relevant_iter(p, W)`` — incremental distance-ordered
  iteration over objects carrying at least one keyword of ``W``;
- ``relevant_in_circle(c, W)`` — keyword-filtered circle range queries;
- ``nearest_neighbor_set(q)`` — the paper's ``N(q)``, one ``NN(q, t)``
  per query keyword.

The tree is bulk-loaded with STR over the dataset; dynamic insertion is
supported as well so incremental workloads can be modeled.
"""

from __future__ import annotations

import heapq
import itertools
import math
from typing import Dict, FrozenSet, Iterator, List, Optional, Sequence, Set, Tuple, Union

from repro.errors import InfeasibleQueryError
from repro.geometry.circle import Circle
from repro.geometry.mbr import MBR
from repro.geometry.point import Point
from repro.index.rtree import DEFAULT_MAX_ENTRIES, _pack_upward, _str_tiles  # noqa: F401
from repro.model.dataset import Dataset
from repro.model.objects import SpatialObject
from repro.model.query import Query

__all__ = ["IRTree", "IRTreeNode"]


class IRTreeNode:
    """One IR-tree node: MBR + subtree keyword union.

    Leaf nodes store objects directly; internal nodes store children.
    """

    __slots__ = ("is_leaf", "objects", "children", "mbr", "keywords")

    def __init__(self, is_leaf: bool):
        self.is_leaf = is_leaf
        self.objects: List[SpatialObject] = []
        self.children: List["IRTreeNode"] = []
        self.mbr: Optional[MBR] = None
        self.keywords: Set[int] = set()

    def entry_count(self) -> int:
        return len(self.objects) if self.is_leaf else len(self.children)

    def recompute_summaries(self) -> None:
        """Rebuild this node's MBR and keyword union from its entries."""
        self.keywords = set()
        if self.is_leaf:
            self.mbr = (
                MBR.from_points(o.location for o in self.objects)
                if self.objects
                else None
            )
            for obj in self.objects:
                self.keywords.update(obj.keywords)
        else:
            rects = [c.mbr for c in self.children if c.mbr is not None]
            self.mbr = MBR.union_all(rects) if rects else None
            for child in self.children:
                self.keywords.update(child.keywords)


class IRTree:
    """A bulk-loaded (or incrementally built) IR-tree over a dataset."""

    def __init__(self, max_entries: int = DEFAULT_MAX_ENTRIES):
        if max_entries < 4:
            raise ValueError("max_entries must be at least 4")
        self.max_entries = max_entries
        self.root = IRTreeNode(is_leaf=True)
        self._size = 0

    # -- construction --------------------------------------------------------

    @classmethod
    def build(cls, dataset: Dataset, max_entries: int = DEFAULT_MAX_ENTRIES) -> "IRTree":
        """STR bulk-load an IR-tree over all objects of ``dataset``."""
        tree = cls(max_entries=max_entries)
        entries = [(obj.location, obj) for obj in dataset]
        if not entries:
            return tree
        leaves: List[IRTreeNode] = []
        for chunk in _str_tiles(entries, max_entries):
            leaf = IRTreeNode(is_leaf=True)
            leaf.objects = [obj for _, obj in chunk]
            leaf.recompute_summaries()
            leaves.append(leaf)
        tree.root = _pack_ir_upward(leaves, max_entries)
        tree._size = len(entries)
        return tree

    def insert(self, obj: SpatialObject) -> None:
        """Insert one object, keeping MBRs and keyword summaries tight."""
        split = self._insert_into(self.root, obj)
        if split is not None:
            old_root = self.root
            new_root = IRTreeNode(is_leaf=False)
            new_root.children = [old_root, split]
            new_root.recompute_summaries()
            self.root = new_root
        self._size += 1

    def _insert_into(self, node: IRTreeNode, obj: SpatialObject) -> Optional[IRTreeNode]:
        if node.is_leaf:
            node.objects.append(obj)
            if len(node.objects) > self.max_entries:
                return self._split_leaf(node)
            node.recompute_summaries()
            return None
        child = _choose_ir_subtree(node.children, obj.location)
        split = self._insert_into(child, obj)
        if split is not None:
            node.children.append(split)
            if len(node.children) > self.max_entries:
                return self._split_internal(node)
        node.recompute_summaries()
        return None

    def _split_leaf(self, node: IRTreeNode) -> IRTreeNode:
        objects = sorted(node.objects, key=_sort_key)
        half = len(objects) // 2
        new_node = IRTreeNode(is_leaf=True)
        node.objects = objects[:half]
        new_node.objects = objects[half:]
        node.recompute_summaries()
        new_node.recompute_summaries()
        return new_node

    def _split_internal(self, node: IRTreeNode) -> IRTreeNode:
        children = sorted(
            node.children,
            key=lambda c: (c.mbr.center().x, c.mbr.center().y)
            if c.mbr is not None
            else (0.0, 0.0),
        )
        half = len(children) // 2
        new_node = IRTreeNode(is_leaf=False)
        node.children = children[:half]
        new_node.children = children[half:]
        node.recompute_summaries()
        new_node.recompute_summaries()
        return new_node

    # -- queries -------------------------------------------------------------

    def __len__(self) -> int:
        return self._size

    def nearest_relevant_iter(
        self, point: Point, keywords: FrozenSet[int], within: Circle | None = None
    ) -> Iterator[Tuple[float, SpatialObject]]:
        """Objects carrying any keyword of ``keywords``, by ascending distance.

        Best-first traversal; subtrees whose keyword summary is disjoint
        from ``keywords`` are never opened.  ``within`` additionally
        restricts results (and the traversal) to a closed disk — the
        owner-driven algorithms search ``C(q, r)`` anchored elsewhere, and
        pruning the disk inside the traversal is what makes that cheap.
        """
        if self.root.mbr is None:
            return
        counter = itertools.count()
        # Heap entries are either unopened nodes or materialized objects.
        heap: List[Tuple[float, int, bool, Union[IRTreeNode, SpatialObject]]] = []
        if not self.root.keywords.isdisjoint(keywords):
            heapq.heappush(
                heap,
                (self.root.mbr.min_distance(point), next(counter), False, self.root),
            )
        w_center = within.center if within is not None else None
        w_radius = within.radius if within is not None else 0.0
        while heap:
            dist, _, is_object, item = heapq.heappop(heap)
            if is_object:
                yield dist, item  # type: ignore[misc]
                continue
            node: IRTreeNode = item  # type: ignore[assignment]
            if node.is_leaf:
                for obj in node.objects:
                    if obj.keywords.isdisjoint(keywords):
                        continue
                    if (
                        w_center is not None
                        and w_center.distance_to(obj.location) > w_radius
                    ):
                        continue
                    d = point.distance_to(obj.location)
                    heapq.heappush(heap, (d, next(counter), True, obj))
            else:
                for child in node.children:
                    if child.mbr is None or child.keywords.isdisjoint(keywords):
                        continue
                    if (
                        w_center is not None
                        and child.mbr.min_distance(w_center) > w_radius
                    ):
                        continue
                    heapq.heappush(
                        heap,
                        (child.mbr.min_distance(point), next(counter), False, child),
                    )

    def keyword_nn(
        self, point: Point, keyword_id: int
    ) -> Optional[Tuple[float, SpatialObject]]:
        """The paper's ``NN(point, t)``: nearest object carrying ``t``.

        Returns ``(distance, object)`` or None when no object carries the
        keyword.  Ties on distance are broken deterministically by object
        id through the traversal's insertion counter, so repeated calls
        agree.
        """
        target = frozenset((keyword_id,))
        for dist, obj in self.nearest_relevant_iter(point, target):
            return dist, obj
        return None

    def boolean_knn(self, query: Query, k: int) -> List[Tuple[float, SpatialObject]]:
        """Boolean kNN: the k nearest objects covering *all* query keywords.

        The single-object spatial keyword query from the related work
        (Felipe et al., ICDE 2008): each result object individually
        carries every keyword of ``q.ψ``; results ascend by distance.
        Returns fewer than k when fewer qualifying objects exist (an
        empty list when no single object covers the whole query — the
        situation CoSKQ exists to solve).
        """
        out: List[Tuple[float, SpatialObject]] = []
        if k <= 0:
            return out
        for dist, obj in self.nearest_relevant_iter(query.location, query.keywords):
            if query.keywords <= obj.keywords:
                out.append((dist, obj))
                if len(out) >= k:
                    break
        return out

    def nearest_neighbor_set(self, query: Query) -> Dict[int, Tuple[float, SpatialObject]]:
        """The paper's ``N(q)``: for each ``t ∈ q.ψ`` the object ``NN(q, t)``.

        Returns a map keyword id → (distance, object).  Raises
        :class:`InfeasibleQueryError` when some query keyword is carried
        by no object — then no feasible set exists at all.
        """
        out: Dict[int, Tuple[float, SpatialObject]] = {}
        missing: List[int] = []
        for t in query.keywords:
            hit = self.keyword_nn(query.location, t)
            if hit is None:
                missing.append(t)
            else:
                out[t] = hit
        if missing:
            raise InfeasibleQueryError(missing)
        return out

    def relevant_in_circle(
        self, circle: Circle, keywords: FrozenSet[int]
    ) -> List[SpatialObject]:
        """Objects in the closed disk carrying any keyword of ``keywords``."""
        out: List[SpatialObject] = []
        if self.root.mbr is None:
            return out
        center = circle.center
        radius = circle.radius
        stack = [self.root]
        while stack:
            node = stack.pop()
            if node.mbr is None or node.keywords.isdisjoint(keywords):
                continue
            if not circle.intersects_mbr(node.mbr):
                continue
            if node.is_leaf:
                for obj in node.objects:
                    if (
                        not obj.keywords.isdisjoint(keywords)
                        and center.distance_to(obj.location) <= radius
                    ):
                        out.append(obj)
            else:
                stack.extend(node.children)
        return out

    def relevant_in_region(
        self, circles: Sequence[Circle], keywords: FrozenSet[int]
    ) -> List[SpatialObject]:
        """Relevant objects inside the intersection of all ``circles``.

        The owner-driven exact search restricts completion candidates to
        ``C(q, r) ∩ C(owner, budget)``; pruning both disks during one
        traversal avoids materializing the (much larger) single-disk set.
        """
        out: List[SpatialObject] = []
        if self.root.mbr is None or not circles:
            return out
        stack = [self.root]
        while stack:
            node = stack.pop()
            if node.mbr is None or node.keywords.isdisjoint(keywords):
                continue
            if any(node.mbr.min_distance(c.center) > c.radius for c in circles):
                continue
            if node.is_leaf:
                for obj in node.objects:
                    if obj.keywords.isdisjoint(keywords):
                        continue
                    if all(c.contains(obj.location) for c in circles):
                        out.append(obj)
            else:
                stack.extend(node.children)
        return out

    def objects_in_circle(self, circle: Circle) -> List[SpatialObject]:
        """All objects in the closed disk, regardless of keywords."""
        out: List[SpatialObject] = []
        if self.root.mbr is None:
            return out
        center = circle.center
        radius = circle.radius
        stack = [self.root]
        while stack:
            node = stack.pop()
            if node.mbr is None or not circle.intersects_mbr(node.mbr):
                continue
            if node.is_leaf:
                for obj in node.objects:
                    if center.distance_to(obj.location) <= radius:
                        out.append(obj)
            else:
                stack.extend(node.children)
        return out

    # -- introspection ---------------------------------------------------------

    def height(self) -> int:
        h = 1
        node = self.root
        while not node.is_leaf:
            node = node.children[0]
            h += 1
        return h

    def check_invariants(self) -> None:
        """Raise AssertionError on any structural or summary violation."""
        count = _check_ir_node(self.root, self.max_entries, is_root=True)
        assert count == self._size, "entry count %d != size %d" % (count, self._size)

    def all_objects(self) -> Iterator[SpatialObject]:
        stack = [self.root]
        while stack:
            node = stack.pop()
            if node.is_leaf:
                yield from node.objects
            else:
                stack.extend(node.children)


# -- helpers ------------------------------------------------------------------


def _sort_key(obj: SpatialObject) -> Tuple[float, float, int]:
    return (obj.location.x, obj.location.y, obj.oid)


def _choose_ir_subtree(children: Sequence[IRTreeNode], point: Point) -> IRTreeNode:
    """Least enlargement, ties by area (Guttman ChooseLeaf)."""
    rect = MBR.from_point(point)
    best = children[0]
    best_key = (math.inf, math.inf)
    for child in children:
        if child.mbr is None:
            return child
        key = (child.mbr.enlargement(rect), child.mbr.area())
        if key < best_key:
            best_key = key
            best = child
    return best


def _pack_ir_upward(nodes: List[IRTreeNode], capacity: int) -> IRTreeNode:
    """Stack IR-node levels until a single root remains."""
    if not nodes:
        return IRTreeNode(is_leaf=True)
    while len(nodes) > 1:
        parents: List[IRTreeNode] = []
        nodes.sort(
            key=lambda nd: (nd.mbr.center().x, nd.mbr.center().y)
            if nd.mbr is not None
            else (0.0, 0.0)
        )
        for start in range(0, len(nodes), capacity):
            parent = IRTreeNode(is_leaf=False)
            parent.children = nodes[start : start + capacity]
            parent.recompute_summaries()
            parents.append(parent)
        nodes = parents
    return nodes[0]


def _check_ir_node(node: IRTreeNode, max_entries: int, is_root: bool) -> int:
    assert node.entry_count() <= max_entries, "node overflow"
    if not is_root:
        assert node.entry_count() >= 1, "empty non-root node"
    if node.is_leaf:
        expected: Set[int] = set()
        for obj in node.objects:
            expected.update(obj.keywords)
            assert node.mbr is not None and node.mbr.contains_point(obj.location)
        assert node.keywords == expected, "stale leaf keyword summary"
        return len(node.objects)
    total = 0
    expected = set()
    for child in node.children:
        assert child.mbr is not None and node.mbr is not None
        assert node.mbr.contains(child.mbr), "loose internal MBR"
        expected.update(child.keywords)
        total += _check_ir_node(child, max_entries, is_root=False)
    assert node.keywords == expected, "stale internal keyword summary"
    return total
