"""The IR-tree: an R-tree whose nodes carry per-subtree keyword summaries.

The IR-tree (Cong et al., VLDB 2009) is the index the CoSKQ paper runs
on.  Each node stores, besides its MBR, the union of the keyword sets in
its subtree (a compact stand-in for the node's inverted file — sufficient
for the boolean keyword containment tests CoSKQ needs).  This enables:

- ``keyword_nn(p, t)`` — the nearest object to ``p`` carrying keyword
  ``t`` (the paper's ``NN(p, t)``), via best-first traversal that skips
  subtrees whose keyword summary misses ``t``;
- ``nearest_relevant_iter(p, W)`` — incremental distance-ordered
  iteration over objects carrying at least one keyword of ``W``;
- ``relevant_in_circle(c, W)`` — keyword-filtered circle range queries;
- ``nearest_neighbor_set(q)`` — the paper's ``N(q)``, one ``NN(q, t)``
  per query keyword.

The tree is bulk-loaded with STR over the dataset; dynamic insertion is
supported as well so incremental workloads can be modeled.

Besides the ``Set[int]`` keyword summary each node carries its bitmask
twin (``kw_mask``; leaves additionally keep per-entry ``obj_masks``),
built unconditionally like the packed coordinate columns.  With
``REPRO_SIGNATURES`` enabled (:mod:`repro.index.signatures`) every
keyword test in the traversals runs on the masks — ``mask & w_mask``
instead of ``isdisjoint`` — which is decision-identical because the
mask↔set mapping is a bijection.  Summaries are maintained
*incrementally* on insert (union with the new entry) and rebuilt from
scratch only when a node splits.
"""

from __future__ import annotations

import heapq
import itertools
import math
from array import array
from typing import Dict, FrozenSet, Iterator, List, Optional, Sequence, Set, Tuple, Union

from repro.errors import InfeasibleQueryError
from repro.geometry.circle import Circle
from repro.geometry.mbr import MBR
from repro.geometry.point import Point
from repro.index.rtree import DEFAULT_MAX_ENTRIES, _pack_upward, _str_tiles  # noqa: F401
from repro.index.signatures import mask_of, signatures_enabled
from repro.kernels import cap_bands, kernels_enabled
from repro.utils.floatcmp import EPSILON as _ZERO_EPS
from repro.model.dataset import Dataset
from repro.model.objects import SpatialObject
from repro.model.query import Query

__all__ = ["IRTree", "IRTreeNode"]


class IRTreeNode:
    """One IR-tree node: MBR + subtree keyword union.

    Leaf nodes store objects directly; internal nodes store children.
    Leaves additionally keep their entry coordinates packed into
    parallel ``array('d')`` columns (``xs``/``ys``, rebuilt alongside
    the other summaries) so range and nearest scans run on flat doubles
    with a guarded squared-distance early exit instead of chasing
    ``obj.location`` per entry — see ``docs/PERFORMANCE.md``.
    """

    __slots__ = (
        "is_leaf",
        "objects",
        "children",
        "mbr",
        "keywords",
        "kw_mask",
        "obj_masks",
        "xs",
        "ys",
    )

    def __init__(self, is_leaf: bool):
        self.is_leaf = is_leaf
        self.objects: List[SpatialObject] = []
        self.children: List["IRTreeNode"] = []
        self.mbr: Optional[MBR] = None
        self.keywords: Set[int] = set()
        #: Bitmask twin of ``keywords`` (``repro.index.signatures``).
        self.kw_mask: int = 0
        #: Leaf-only: per-entry keyword masks, parallel to ``objects``.
        self.obj_masks: List[int] = []
        self.xs: array = array("d")
        self.ys: array = array("d")

    def entry_count(self) -> int:
        return len(self.objects) if self.is_leaf else len(self.children)

    def recompute_summaries(self) -> None:
        """Rebuild this node's MBR, keyword summaries and coordinate columns.

        Called on bulk load and after splits; ordinary inserts maintain
        every summary incrementally instead (see ``_insert_into``).
        """
        self.keywords = set()
        self.kw_mask = 0
        if self.is_leaf:
            self.mbr = (
                MBR.from_points(o.location for o in self.objects)
                if self.objects
                else None
            )
            self.obj_masks = []
            for obj in self.objects:
                self.keywords.update(obj.keywords)
                mask = mask_of(obj.keywords)
                self.obj_masks.append(mask)
                self.kw_mask |= mask
            self.xs = array("d", (o.location.x for o in self.objects))
            self.ys = array("d", (o.location.y for o in self.objects))
        else:
            rects = [c.mbr for c in self.children if c.mbr is not None]
            self.mbr = MBR.union_all(rects) if rects else None
            for child in self.children:
                self.keywords.update(child.keywords)
                self.kw_mask |= child.kw_mask


class IRTree:
    """A bulk-loaded (or incrementally built) IR-tree over a dataset."""

    def __init__(self, max_entries: int = DEFAULT_MAX_ENTRIES):
        if max_entries < 4:
            raise ValueError("max_entries must be at least 4")
        self.max_entries = max_entries
        self.root = IRTreeNode(is_leaf=True)
        self._size = 0

    # -- construction --------------------------------------------------------

    @classmethod
    def build(cls, dataset: Dataset, max_entries: int = DEFAULT_MAX_ENTRIES) -> "IRTree":
        """STR bulk-load an IR-tree over all objects of ``dataset``."""
        tree = cls(max_entries=max_entries)
        entries = [(obj.location, obj) for obj in dataset]
        if not entries:
            return tree
        leaves: List[IRTreeNode] = []
        for chunk in _str_tiles(entries, max_entries):
            leaf = IRTreeNode(is_leaf=True)
            leaf.objects = [obj for _, obj in chunk]
            leaf.recompute_summaries()
            leaves.append(leaf)
        tree.root = _pack_ir_upward(leaves, max_entries)
        tree._size = len(entries)
        return tree

    def insert(self, obj: SpatialObject) -> None:
        """Insert one object, keeping MBRs and keyword summaries tight."""
        split = self._insert_into(self.root, obj)
        if split is not None:
            old_root = self.root
            new_root = IRTreeNode(is_leaf=False)
            new_root.children = [old_root, split]
            new_root.recompute_summaries()
            self.root = new_root
        self._size += 1

    def _insert_into(self, node: IRTreeNode, obj: SpatialObject) -> Optional[IRTreeNode]:
        """Insert ``obj`` below ``node``, maintaining summaries incrementally.

        The non-split path unions the new entry into each summary along
        the insertion path (min/max and set/bit unions are associative,
        so the result equals a from-scratch rebuild); only a split — the
        one event that *removes* entries from a node — rebuilds, inside
        ``_split_leaf``/``_split_internal``.
        """
        obj_mask = mask_of(obj.keywords)
        point_rect = MBR.from_point(obj.location)
        if node.is_leaf:
            node.objects.append(obj)
            if len(node.objects) > self.max_entries:
                return self._split_leaf(node)
            node.keywords |= obj.keywords
            node.kw_mask |= obj_mask
            node.obj_masks.append(obj_mask)
            node.xs.append(obj.location.x)
            node.ys.append(obj.location.y)
            node.mbr = point_rect if node.mbr is None else node.mbr.union(point_rect)
            return None
        child = _choose_ir_subtree(node.children, obj.location)
        split = self._insert_into(child, obj)
        if split is not None:
            node.children.append(split)
            if len(node.children) > self.max_entries:
                return self._split_internal(node)
            node.recompute_summaries()
            return None
        node.keywords |= obj.keywords
        node.kw_mask |= obj_mask
        node.mbr = point_rect if node.mbr is None else node.mbr.union(point_rect)
        return None

    def _split_leaf(self, node: IRTreeNode) -> IRTreeNode:
        objects = sorted(node.objects, key=_sort_key)
        half = len(objects) // 2
        new_node = IRTreeNode(is_leaf=True)
        node.objects = objects[:half]
        new_node.objects = objects[half:]
        node.recompute_summaries()
        new_node.recompute_summaries()
        return new_node

    def _split_internal(self, node: IRTreeNode) -> IRTreeNode:
        children = sorted(
            node.children,
            key=lambda c: (c.mbr.center().x, c.mbr.center().y)
            if c.mbr is not None
            else (0.0, 0.0),
        )
        half = len(children) // 2
        new_node = IRTreeNode(is_leaf=False)
        node.children = children[:half]
        new_node.children = children[half:]
        node.recompute_summaries()
        new_node.recompute_summaries()
        return new_node

    # -- queries -------------------------------------------------------------

    def __len__(self) -> int:
        return self._size

    def nearest_relevant_iter(
        self, point: Point, keywords: FrozenSet[int], within: Circle | None = None
    ) -> Iterator[Tuple[float, SpatialObject]]:
        """Objects carrying any keyword of ``keywords``, by ascending distance.

        Single best-first heap over (mindist, node/object) entries; all
        keyword pruning happens at *push* time, so subtrees whose
        keyword summary is disjoint from ``keywords`` are never opened
        and irrelevant objects never enter the heap.  ``within``
        additionally restricts results (and the traversal) to a closed
        disk — the owner-driven algorithms search ``C(q, r)`` anchored
        elsewhere, and pruning the disk inside the traversal is what
        makes that cheap.  With signatures enabled the keyword tests run
        on node/entry bitmasks (decision-identical to the set algebra).
        """
        if self.root.mbr is None:
            return
        use_sig = signatures_enabled()
        w_mask = mask_of(keywords) if use_sig else 0
        counter = itertools.count()
        # Heap entries are either unopened nodes or materialized objects.
        heap: List[Tuple[float, int, bool, Union[IRTreeNode, SpatialObject]]] = []
        if (
            self.root.kw_mask & w_mask
            if use_sig
            else not self.root.keywords.isdisjoint(keywords)  # repro: noqa(R9) — toggle-off baseline
        ):
            heapq.heappush(
                heap,
                (self.root.mbr.min_distance(point), next(counter), False, self.root),
            )
        w_center = within.center if within is not None else None
        w_radius = within.radius if within is not None else 0.0
        use_flat = kernels_enabled()
        px = point.x
        py = point.y
        if w_center is not None:
            wx = w_center.x
            wy = w_center.y
            if use_flat:
                w_lo2, w_hi2, w_fast = cap_bands(w_radius)
            else:
                w_lo2 = w_hi2 = 0.0
                w_fast = False
        while heap:
            dist, _, is_object, item = heapq.heappop(heap)
            if is_object:
                yield dist, item  # type: ignore[misc]
                continue
            node: IRTreeNode = item  # type: ignore[assignment]
            if node.is_leaf:
                if use_flat:
                    # Packed-column scan: the window test decides most
                    # entries from the squared distance alone, and the
                    # heap key is the same exact hypot the scalar path
                    # computes — just without the attribute chasing.
                    xs = node.xs
                    ys = node.ys
                    masks = node.obj_masks
                    for i, obj in enumerate(node.objects):
                        if use_sig:
                            if not masks[i] & w_mask:
                                continue
                        elif obj.keywords.isdisjoint(keywords):  # repro: noqa(R9) — toggle-off baseline
                            continue
                        if w_center is not None:
                            dx = wx - xs[i]
                            dy = wy - ys[i]
                            sq = dx * dx + dy * dy
                            if w_fast and sq > w_hi2:
                                continue
                            if (not w_fast or sq >= w_lo2) and math.hypot(
                                dx, dy
                            ) > w_radius:
                                continue
                        d = math.hypot(px - xs[i], py - ys[i])
                        heapq.heappush(heap, (d, next(counter), True, obj))
                    continue
                masks = node.obj_masks
                for i, obj in enumerate(node.objects):
                    if use_sig:
                        if not masks[i] & w_mask:
                            continue
                    elif obj.keywords.isdisjoint(keywords):  # repro: noqa(R9) — toggle-off baseline
                        continue
                    if (
                        w_center is not None
                        and w_center.distance_to(obj.location) > w_radius
                    ):
                        continue
                    d = point.distance_to(obj.location)
                    heapq.heappush(heap, (d, next(counter), True, obj))
            else:
                for child in node.children:
                    if child.mbr is None:
                        continue
                    if use_sig:
                        if not child.kw_mask & w_mask:
                            continue
                    elif child.keywords.isdisjoint(keywords):  # repro: noqa(R9) — toggle-off baseline
                        continue
                    if use_flat:
                        # Inlined min_distance: same clamped-offset
                        # branch structure as MBR.min_distance (offsets
                        # are non-negative, so ``<= _ZERO_EPS`` is
                        # exactly floatcmp.is_zero()).  The window test
                        # is decision-guarded; the heap key is the exact
                        # min_distance value.
                        mbr = child.mbr
                        if w_center is not None:
                            dx = 0.0
                            if wx < mbr.min_x:
                                dx = mbr.min_x - wx
                            elif wx > mbr.max_x:
                                dx = wx - mbr.max_x
                            dy = 0.0
                            if wy < mbr.min_y:
                                dy = mbr.min_y - wy
                            elif wy > mbr.max_y:
                                dy = wy - mbr.max_y
                            if dx <= _ZERO_EPS:
                                if dy > w_radius:
                                    continue
                            elif dy <= _ZERO_EPS:
                                if dx > w_radius:
                                    continue
                            else:
                                sq = dx * dx + dy * dy
                                if w_fast and sq > w_hi2:
                                    continue
                                if (not w_fast or sq >= w_lo2) and math.hypot(
                                    dx, dy
                                ) > w_radius:
                                    continue
                        dx = 0.0
                        if px < mbr.min_x:
                            dx = mbr.min_x - px
                        elif px > mbr.max_x:
                            dx = px - mbr.max_x
                        dy = 0.0
                        if py < mbr.min_y:
                            dy = mbr.min_y - py
                        elif py > mbr.max_y:
                            dy = py - mbr.max_y
                        if dx <= _ZERO_EPS:
                            key = dy
                        elif dy <= _ZERO_EPS:
                            key = dx
                        else:
                            key = math.hypot(dx, dy)
                        heapq.heappush(heap, (key, next(counter), False, child))
                        continue
                    if (
                        w_center is not None
                        and child.mbr.min_distance(w_center) > w_radius
                    ):
                        continue
                    heapq.heappush(
                        heap,
                        (child.mbr.min_distance(point), next(counter), False, child),
                    )

    def keyword_nn(
        self, point: Point, keyword_id: int
    ) -> Optional[Tuple[float, SpatialObject]]:
        """The paper's ``NN(point, t)``: nearest object carrying ``t``.

        Returns ``(distance, object)`` or None when no object carries the
        keyword.  Ties on distance are broken deterministically by object
        id through the traversal's insertion counter, so repeated calls
        agree.
        """
        target = frozenset((keyword_id,))
        for dist, obj in self.nearest_relevant_iter(point, target):
            return dist, obj
        return None

    def boolean_knn(self, query: Query, k: int) -> List[Tuple[float, SpatialObject]]:
        """Boolean kNN: the k nearest objects covering *all* query keywords.

        The single-object spatial keyword query from the related work
        (Felipe et al., ICDE 2008): each result object individually
        carries every keyword of ``q.ψ``; results ascend by distance.
        Returns fewer than k when fewer qualifying objects exist (an
        empty list when no single object covers the whole query — the
        situation CoSKQ exists to solve).

        With signatures enabled this runs a dedicated best-first
        traversal with the *covering* prune ``q_mask & ~kw_mask != 0``:
        a subtree whose keyword union does not cover ``q.ψ`` cannot
        contain a covering object, so whole relevant-but-insufficient
        subtrees are skipped that the signatures-off path (filtering a
        relevance-ordered stream) must still walk.  Results are
        identical: both paths emit covering objects in ascending
        ``(distance, push order)``, and the relative push order of the
        surviving entries matches the off path's traversal (pruned
        entries contribute no results and do not reorder the rest).
        """
        out: List[Tuple[float, SpatialObject]] = []
        if k <= 0:
            return out
        if signatures_enabled():
            if self.root.mbr is None:
                return out
            q_mask = mask_of(query.keywords)
            if q_mask & ~self.root.kw_mask:
                return out
            point = query.location
            counter = itertools.count()
            heap: List[Tuple[float, int, bool, Union[IRTreeNode, SpatialObject]]] = [
                (self.root.mbr.min_distance(point), next(counter), False, self.root)
            ]
            while heap:
                dist, _, is_object, item = heapq.heappop(heap)
                if is_object:
                    out.append((dist, item))  # type: ignore[arg-type]
                    if len(out) >= k:
                        break
                    continue
                node: IRTreeNode = item  # type: ignore[assignment]
                if node.is_leaf:
                    masks = node.obj_masks
                    for i, obj in enumerate(node.objects):
                        if q_mask & ~masks[i]:
                            continue
                        d = point.distance_to(obj.location)
                        heapq.heappush(heap, (d, next(counter), True, obj))
                else:
                    for child in node.children:
                        if child.mbr is None or q_mask & ~child.kw_mask:
                            continue
                        heapq.heappush(
                            heap,
                            (child.mbr.min_distance(point), next(counter), False, child),
                        )
            return out
        for dist, obj in self.nearest_relevant_iter(query.location, query.keywords):
            if query.keywords <= obj.keywords:  # repro: noqa(R9) — toggle-off baseline
                out.append((dist, obj))
                if len(out) >= k:
                    break
        return out

    def nearest_neighbor_set(self, query: Query) -> Dict[int, Tuple[float, SpatialObject]]:
        """The paper's ``N(q)``: for each ``t ∈ q.ψ`` the object ``NN(q, t)``.

        Returns a map keyword id → (distance, object).  Raises
        :class:`InfeasibleQueryError` when some query keyword is carried
        by no object — then no feasible set exists at all.
        """
        out: Dict[int, Tuple[float, SpatialObject]] = {}
        missing: List[int] = []
        for t in query.keywords:
            hit = self.keyword_nn(query.location, t)
            if hit is None:
                missing.append(t)
            else:
                out[t] = hit
        if missing:
            raise InfeasibleQueryError(missing)
        return out

    def relevant_in_circle(
        self, circle: Circle, keywords: FrozenSet[int]
    ) -> List[SpatialObject]:
        """Objects in the closed disk carrying any keyword of ``keywords``."""
        out: List[SpatialObject] = []
        if self.root.mbr is None:
            return out
        center = circle.center
        radius = circle.radius
        use_flat = kernels_enabled()
        use_sig = signatures_enabled()
        w_mask = mask_of(keywords) if use_sig else 0
        cx = center.x
        cy = center.y
        if use_flat:
            lo2, hi2, fast = cap_bands(radius)
        else:
            lo2 = hi2 = 0.0
            fast = False
        stack = [self.root]
        while stack:
            node = stack.pop()
            if node.mbr is None:
                continue
            if use_sig:
                if not node.kw_mask & w_mask:
                    continue
            elif node.keywords.isdisjoint(keywords):  # repro: noqa(R9) — toggle-off baseline
                continue
            if use_flat:
                if _mbr_beyond(node.mbr, cx, cy, radius, lo2, hi2, fast):
                    continue
            elif not circle.intersects_mbr(node.mbr):
                continue
            if node.is_leaf:
                masks = node.obj_masks
                if use_flat:
                    # Guarded squared-distance scan over the packed
                    # columns; only band-ambiguous entries pay a hypot.
                    xs = node.xs
                    ys = node.ys
                    for i, obj in enumerate(node.objects):
                        if use_sig:
                            if not masks[i] & w_mask:
                                continue
                        elif obj.keywords.isdisjoint(keywords):  # repro: noqa(R9) — toggle-off baseline
                            continue
                        dx = cx - xs[i]
                        dy = cy - ys[i]
                        sq = dx * dx + dy * dy
                        if fast:
                            if sq < lo2:
                                out.append(obj)
                                continue
                            if sq > hi2:
                                continue
                        if math.hypot(dx, dy) <= radius:
                            out.append(obj)
                    continue
                for i, obj in enumerate(node.objects):
                    if use_sig:
                        if not masks[i] & w_mask:
                            continue
                    elif obj.keywords.isdisjoint(keywords):  # repro: noqa(R9) — toggle-off baseline
                        continue
                    if center.distance_to(obj.location) <= radius:
                        out.append(obj)
            else:
                stack.extend(node.children)
        return out

    def relevant_in_region(
        self, circles: Sequence[Circle], keywords: FrozenSet[int]
    ) -> List[SpatialObject]:
        """Relevant objects inside the intersection of all ``circles``.

        The owner-driven exact search restricts completion candidates to
        ``C(q, r) ∩ C(owner, budget)``; pruning both disks during one
        traversal avoids materializing the (much larger) single-disk set.
        """
        out: List[SpatialObject] = []
        if self.root.mbr is None or not circles:
            return out
        use_flat = kernels_enabled()
        use_sig = signatures_enabled()
        w_mask = mask_of(keywords) if use_sig else 0
        if use_flat:
            # Guard bands per disk: (cx, cy, radius, lo2, hi2, fast).
            bands = [
                (c.center.x, c.center.y, c.radius, *cap_bands(c.radius))
                for c in circles
            ]
        else:
            bands = []
        stack = [self.root]
        while stack:
            node = stack.pop()
            if node.mbr is None:
                continue
            if use_sig:
                if not node.kw_mask & w_mask:
                    continue
            elif node.keywords.isdisjoint(keywords):  # repro: noqa(R9) — toggle-off baseline
                continue
            if use_flat:
                # Inlined MBR/disk prune, decision-identical to
                # ``mbr.min_distance(center) > radius``: the clamped
                # offsets are non-negative, so ``<= _ZERO_EPS`` is
                # exactly floatcmp.is_zero(), and the hypot branch is
                # decided from the squared distance where the guard band
                # makes that conclusive.
                mbr = node.mbr
                pruned = False
                for cx, cy, rr, lo2, hi2, fast in bands:
                    dx = 0.0
                    if cx < mbr.min_x:
                        dx = mbr.min_x - cx
                    elif cx > mbr.max_x:
                        dx = cx - mbr.max_x
                    dy = 0.0
                    if cy < mbr.min_y:
                        dy = mbr.min_y - cy
                    elif cy > mbr.max_y:
                        dy = cy - mbr.max_y
                    if dx <= _ZERO_EPS:
                        md = dy
                    elif dy <= _ZERO_EPS:
                        md = dx
                    else:
                        sq = dx * dx + dy * dy
                        if fast:
                            if sq < lo2:
                                continue  # provably min_distance < radius
                            if sq > hi2:
                                pruned = True
                                break
                        md = math.hypot(dx, dy)
                    if md > rr:
                        pruned = True
                        break
                if pruned:
                    continue
            elif any(node.mbr.min_distance(c.center) > c.radius for c in circles):
                continue
            if node.is_leaf:
                masks = node.obj_masks
                if use_flat:
                    # Disks that contain the whole leaf MBR need no
                    # per-object test: correctly rounded subtraction and
                    # hypot are monotone, so ``max_distance <= radius``
                    # implies every member object passes its exact
                    # ``hypot <= radius`` check.
                    live = [
                        b
                        for b in bands
                        if not _mbr_within(node.mbr, b[0], b[1], b[2], b[3], b[4], b[5])
                    ]
                    if not live:
                        for i, obj in enumerate(node.objects):
                            if use_sig:
                                if masks[i] & w_mask:
                                    out.append(obj)
                            elif not obj.keywords.isdisjoint(keywords):  # repro: noqa(R9) — toggle-off baseline
                                out.append(obj)
                        continue
                    xs = node.xs
                    ys = node.ys
                    for i, obj in enumerate(node.objects):
                        if use_sig:
                            if not masks[i] & w_mask:
                                continue
                        elif obj.keywords.isdisjoint(keywords):  # repro: noqa(R9) — toggle-off baseline
                            continue
                        inside = True
                        for cx, cy, rr, lo2, hi2, fast in live:
                            dx = cx - xs[i]
                            dy = cy - ys[i]
                            sq = dx * dx + dy * dy
                            if fast:
                                if sq < lo2:
                                    continue
                                if sq > hi2:
                                    inside = False
                                    break
                            if math.hypot(dx, dy) > rr:
                                inside = False
                                break
                        if inside:
                            out.append(obj)
                    continue
                for i, obj in enumerate(node.objects):
                    if use_sig:
                        if not masks[i] & w_mask:
                            continue
                    elif obj.keywords.isdisjoint(keywords):  # repro: noqa(R9) — toggle-off baseline
                        continue
                    if all(c.contains(obj.location) for c in circles):
                        out.append(obj)
            else:
                stack.extend(node.children)
        return out

    def relevant_objects(self, keywords: FrozenSet[int]) -> List[SpatialObject]:
        """Every object carrying any keyword of ``keywords``.

        Same stack discipline (and therefore the same output order) as
        :meth:`relevant_in_region` minus the spatial pruning: filtering
        this list by the disk tests reproduces a region query's result
        list element-for-element, which is what lets the owner-driven
        search memoize one keyword-relevant universe per query and carve
        per-owner lens regions out of it with the flat kernels.
        """
        out: List[SpatialObject] = []
        use_sig = signatures_enabled()
        w_mask = mask_of(keywords) if use_sig else 0
        stack = [self.root]
        while stack:
            node = stack.pop()
            if node.mbr is None:
                continue
            if use_sig:
                if not node.kw_mask & w_mask:
                    continue
            elif node.keywords.isdisjoint(keywords):  # repro: noqa(R9) — toggle-off baseline
                continue
            if node.is_leaf:
                masks = node.obj_masks
                for i, obj in enumerate(node.objects):
                    if use_sig:
                        if masks[i] & w_mask:
                            out.append(obj)
                    elif not obj.keywords.isdisjoint(keywords):  # repro: noqa(R9) — toggle-off baseline
                        out.append(obj)
            else:
                stack.extend(node.children)
        return out

    def objects_in_circle(self, circle: Circle) -> List[SpatialObject]:
        """All objects in the closed disk, regardless of keywords."""
        out: List[SpatialObject] = []
        if self.root.mbr is None:
            return out
        center = circle.center
        radius = circle.radius
        use_flat = kernels_enabled()
        cx = center.x
        cy = center.y
        if use_flat:
            lo2, hi2, fast = cap_bands(radius)
        else:
            lo2 = hi2 = 0.0
            fast = False
        stack = [self.root]
        while stack:
            node = stack.pop()
            if node.mbr is None:
                continue
            if use_flat:
                if _mbr_beyond(node.mbr, cx, cy, radius, lo2, hi2, fast):
                    continue
            elif not circle.intersects_mbr(node.mbr):
                continue
            if node.is_leaf:
                if use_flat:
                    xs = node.xs
                    ys = node.ys
                    for i, obj in enumerate(node.objects):
                        dx = cx - xs[i]
                        dy = cy - ys[i]
                        sq = dx * dx + dy * dy
                        if fast:
                            if sq < lo2:
                                out.append(obj)
                                continue
                            if sq > hi2:
                                continue
                        if math.hypot(dx, dy) <= radius:
                            out.append(obj)
                    continue
                for obj in node.objects:
                    if center.distance_to(obj.location) <= radius:
                        out.append(obj)
            else:
                stack.extend(node.children)
        return out

    # -- introspection ---------------------------------------------------------

    def height(self) -> int:
        h = 1
        node = self.root
        while not node.is_leaf:
            node = node.children[0]
            h += 1
        return h

    def check_invariants(self) -> None:
        """Raise AssertionError on any structural or summary violation."""
        count = _check_ir_node(self.root, self.max_entries, is_root=True)
        assert count == self._size, "entry count %d != size %d" % (count, self._size)

    def all_objects(self) -> Iterator[SpatialObject]:
        stack = [self.root]
        while stack:
            node = stack.pop()
            if node.is_leaf:
                yield from node.objects
            else:
                stack.extend(node.children)


# -- helpers ------------------------------------------------------------------


def _mbr_beyond(
    mbr: MBR,
    cx: float,
    cy: float,
    radius: float,
    lo2: float,
    hi2: float,
    fast: bool,
) -> bool:
    """Decision-identical to ``mbr.min_distance(Point(cx, cy)) > radius``.

    One call instead of the ``intersects_mbr`` → ``min_distance`` →
    ``is_zero`` chain: the clamped offsets are non-negative, so
    ``<= _ZERO_EPS`` reproduces :func:`repro.utils.floatcmp.is_zero`
    exactly, and the hypot branch is decided from the squared distance
    wherever the guard band (``lo2``/``hi2`` from :func:`cap_bands`)
    makes that conclusive.
    """
    dx = 0.0
    if cx < mbr.min_x:
        dx = mbr.min_x - cx
    elif cx > mbr.max_x:
        dx = cx - mbr.max_x
    dy = 0.0
    if cy < mbr.min_y:
        dy = mbr.min_y - cy
    elif cy > mbr.max_y:
        dy = cy - mbr.max_y
    if dx <= _ZERO_EPS:
        return dy > radius
    if dy <= _ZERO_EPS:
        return dx > radius
    sq = dx * dx + dy * dy
    if fast:
        if sq < lo2:
            return False
        if sq > hi2:
            return True
    return math.hypot(dx, dy) > radius


def _mbr_within(
    mbr: MBR,
    cx: float,
    cy: float,
    radius: float,
    lo2: float,
    hi2: float,
    fast: bool,
) -> bool:
    """Whether the closed disk certainly contains the whole rectangle.

    Decision-identical to ``mbr.max_distance(Point(cx, cy)) <= radius``
    (same operations, guarded by the squared distance where conclusive).
    Soundness of skipping per-object tests on a True result: correctly
    rounded subtraction is monotone, so every member offset is bounded
    by the corner offsets, and correctly rounded ``hypot`` is monotone
    in both magnitudes — hence every member's exact distance value is
    ``<= max_distance <= radius``.
    """
    dxm = max(abs(cx - mbr.min_x), abs(cx - mbr.max_x))
    dym = max(abs(cy - mbr.min_y), abs(cy - mbr.max_y))
    sq = dxm * dxm + dym * dym
    if fast:
        if sq < lo2:
            return True
        if sq > hi2:
            return False
    return math.hypot(dxm, dym) <= radius


def _sort_key(obj: SpatialObject) -> Tuple[float, float, int]:
    return (obj.location.x, obj.location.y, obj.oid)


def _choose_ir_subtree(children: Sequence[IRTreeNode], point: Point) -> IRTreeNode:
    """Least enlargement, ties by area (Guttman ChooseLeaf)."""
    rect = MBR.from_point(point)
    best = children[0]
    best_key = (math.inf, math.inf)
    for child in children:
        if child.mbr is None:
            return child
        key = (child.mbr.enlargement(rect), child.mbr.area())
        if key < best_key:
            best_key = key
            best = child
    return best


def _pack_ir_upward(nodes: List[IRTreeNode], capacity: int) -> IRTreeNode:
    """Stack IR-node levels until a single root remains."""
    if not nodes:
        return IRTreeNode(is_leaf=True)
    while len(nodes) > 1:
        parents: List[IRTreeNode] = []
        nodes.sort(
            key=lambda nd: (nd.mbr.center().x, nd.mbr.center().y)
            if nd.mbr is not None
            else (0.0, 0.0)
        )
        for start in range(0, len(nodes), capacity):
            parent = IRTreeNode(is_leaf=False)
            parent.children = nodes[start : start + capacity]
            parent.recompute_summaries()
            parents.append(parent)
        nodes = parents
    return nodes[0]


def _check_ir_node(node: IRTreeNode, max_entries: int, is_root: bool) -> int:
    assert node.entry_count() <= max_entries, "node overflow"
    if not is_root:
        assert node.entry_count() >= 1, "empty non-root node"
    if node.is_leaf:
        expected: Set[int] = set()
        assert len(node.xs) == len(node.objects), "stale leaf x column"
        assert len(node.ys) == len(node.objects), "stale leaf y column"
        assert len(node.obj_masks) == len(node.objects), "stale leaf mask column"
        for i, obj in enumerate(node.objects):
            expected.update(obj.keywords)
            assert node.mbr is not None and node.mbr.contains_point(obj.location)
            # Exact mirror check: the packed columns must hold the very
            # same doubles as the object locations.
            assert node.xs[i] == obj.location.x and node.ys[i] == obj.location.y, (
                "leaf coordinate column diverges from object locations"
            )
            assert node.obj_masks[i] == mask_of(obj.keywords), (
                "leaf mask column diverges from object keywords"
            )
        assert node.keywords == expected, "stale leaf keyword summary"
        assert node.kw_mask == mask_of(frozenset(expected)), "stale leaf keyword mask"
        return len(node.objects)
    total = 0
    expected = set()
    expected_mask = 0
    for child in node.children:
        assert child.mbr is not None and node.mbr is not None
        assert node.mbr.contains(child.mbr), "loose internal MBR"
        expected.update(child.keywords)
        expected_mask |= child.kw_mask
        total += _check_ir_node(child, max_entries, is_root=False)
    assert node.keywords == expected, "stale internal keyword summary"
    assert node.kw_mask == expected_mask, "stale internal keyword mask"
    assert node.kw_mask == mask_of(frozenset(expected)), (
        "internal keyword mask diverges from keyword summary"
    )
    return total
