"""Keyword-bitmap signatures: stdlib ints as keyword bitsets.

The textual half of every CoSKQ query is set algebra over small integer
keyword ids — ``isdisjoint`` to prune index nodes, ``issubset`` to test
covers, intersection traces to rank cover candidates.  The vocabulary
assigns keyword ids densely from zero (:mod:`repro.model.vocabulary`),
so a keyword set is exactly a bitset in an arbitrary-precision Python
``int``: bit ``t`` is set iff keyword ``t`` is present.  On that
representation the hot predicates collapse to single C-level integer
ops:

==========================  ==============================
set expression              mask expression
==========================  ==============================
``a.isdisjoint(b)``         ``a_mask & b_mask == 0``
``q <= o`` (``issubset``)   ``q_mask & ~o_mask == 0``
``a & b`` (trace)           ``a_mask & b_mask``
``a - b`` (uncovered)       ``a_mask & ~b_mask``
``len(a)`` (popcount)       ``a_mask.bit_count()``
==========================  ==============================

The mask↔set mapping is a bijection (each keyword id owns one bit and
ints are exact), so every mask predicate returns *exactly* the boolean
the set expression returns — pruning decisions, candidate orderings and
tie-breaks are unchanged, which is what the differential suite
(``tests/test_signatures_differential.py``) asserts over every
registered solver.

The mask *query paths* are toggleable with ``REPRO_SIGNATURES`` (or
:func:`set_enabled`), mirroring ``REPRO_KERNELS``: masks are always
*built* (they are cheap columns, like the flat coordinate arrays), but
with the toggle off every index and solver runs the original frozenset
algebra so the benchmark baseline stays honest.

This module is the sanctioned home for keyword-set algebra in the index
and solver packages; inline ``isdisjoint``/``issubset``/``&`` keyword
ops there are barred by lint rule R9 (``docs/STATIC_ANALYSIS.md``).
"""

from __future__ import annotations

import os
from typing import Dict, FrozenSet, Iterable, Iterator, List, Optional

__all__ = [
    "signatures_enabled",
    "set_enabled",
    "mask_of",
    "pack_masks",
    "bits_of",
    "keywords_of",
    "covers",
    "overlaps",
    "shared_keywords",
    "covers_all",
]

#: Module-level override for the environment toggle; None means
#: "follow the environment".
_FORCED: Optional[bool] = None

#: Environment variable controlling the signature query paths.  Read
#: per call (cheap) rather than at import, and env-based rather than a
#: module global alone, so the setting propagates into forked parallel
#: workers (:mod:`repro.parallel`) without extra plumbing.
_ENV_VAR = "REPRO_SIGNATURES"

_FALSE_VALUES = frozenset({"0", "false", "no", "off"})


def signatures_enabled() -> bool:
    """Whether the bitmask query paths are active (default: yes).

    Disabled by ``REPRO_SIGNATURES=0`` (or ``false``/``no``/``off``) or
    by :func:`set_enabled`.  Masks encode the same sets exactly, so the
    switch exists for the differential test suite and for benchmarking
    the speedup honestly — not for safety.
    """
    if _FORCED is not None:
        return _FORCED
    return os.environ.get(_ENV_VAR, "1").strip().lower() not in _FALSE_VALUES


def set_enabled(value: Optional[bool]) -> None:
    """Force the toggle (True/False) or restore env control (None)."""
    global _FORCED
    _FORCED = value


# -- building masks ------------------------------------------------------------

#: Memo from frozen keyword set to its mask.  Keyword sets are shared
#: heavily (every query carries one frozenset; objects repeat traces),
#: and frozensets cache their hash, so the dict probe is cheap.  The
#: memo is unbounded but keys are interned-ish small sets; a dataset
#: with V keywords admits at most the sets actually seen.
_MASK_MEMO: Dict[FrozenSet[int], int] = {}


def mask_of(keywords: Iterable[int]) -> int:
    """The bitmask of a keyword id set (memoized for frozensets)."""
    if isinstance(keywords, frozenset):
        cached = _MASK_MEMO.get(keywords)
        if cached is None:
            cached = 0
            for t in keywords:
                cached |= 1 << t
            _MASK_MEMO[keywords] = cached
        return cached
    mask = 0
    for t in keywords:
        mask |= 1 << t
    return mask


def pack_masks(objects: Iterable) -> List[int]:
    """Per-object keyword masks, parallel to the input order."""
    return [mask_of(o.keywords) for o in objects]


# -- reading masks -------------------------------------------------------------


def bits_of(mask: int) -> Iterator[int]:
    """Iterate the keyword ids of ``mask`` in ascending order."""
    while mask:
        low = mask & -mask
        yield low.bit_length() - 1
        mask ^= low


def keywords_of(mask: int) -> FrozenSet[int]:
    """The frozen keyword set encoded by ``mask``."""
    return frozenset(bits_of(mask))


# -- predicates ----------------------------------------------------------------


def covers(required_mask: int, carried_mask: int) -> bool:
    """``required ⊆ carried`` on masks (``issubset``)."""
    return required_mask & ~carried_mask == 0


def overlaps(a_mask: int, b_mask: int) -> bool:
    """``not a.isdisjoint(b)`` on masks."""
    return a_mask & b_mask != 0


# -- set-level companions ------------------------------------------------------
#
# Cold call sites (baseline solvers, one-shot setup code) route their
# keyword algebra through these instead of inline frozenset operators so
# rule R9 keeps a single grep-able inventory of keyword-set algebra.
# They are the literal set expressions — no mask round-trip — because at
# cold sites the set op is already optimal and the point is only that
# the representation lives in one module.


def shared_keywords(a: FrozenSet[int], b) -> FrozenSet[int]:
    """``a & b`` for keyword sets (the relevant-keyword trace)."""
    return a & b


def covers_all(required, carried) -> bool:
    """``required ⊆ carried`` for keyword sets."""
    return required <= carried
