"""Spatial-textual indexing: inverted index, R-tree and IR-tree."""

from repro.index.inverted import InvertedIndex
from repro.index.irtree import IRTree, IRTreeNode
from repro.index.neighbors import LinearScanIndex
from repro.index.protocol import SpatialTextIndex
from repro.index.rtree import DEFAULT_MAX_ENTRIES, RTree, RTreeNode

__all__ = [
    "SpatialTextIndex",
    "InvertedIndex",
    "RTree",
    "RTreeNode",
    "IRTree",
    "IRTreeNode",
    "LinearScanIndex",
    "DEFAULT_MAX_ENTRIES",
]
