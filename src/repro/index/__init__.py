"""Spatial-textual indexing: inverted index, R-tree, IR-tree and caches."""

from repro.index.cache import DEFAULT_CACHE_CAPACITY, CacheStats, CachingIndex
from repro.index.inverted import InvertedIndex
from repro.index.irtree import IRTree, IRTreeNode
from repro.index.neighbors import LinearScanIndex
from repro.index.protocol import SpatialTextIndex
from repro.index.rtree import DEFAULT_MAX_ENTRIES, RTree, RTreeNode

__all__ = [
    "SpatialTextIndex",
    "InvertedIndex",
    "CachingIndex",
    "CacheStats",
    "DEFAULT_CACHE_CAPACITY",
    "RTree",
    "RTreeNode",
    "IRTree",
    "IRTreeNode",
    "LinearScanIndex",
    "DEFAULT_MAX_ENTRIES",
]
