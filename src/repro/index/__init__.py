"""Spatial-textual indexing: inverted index, R-tree, IR-tree, signatures, caches."""

from repro.index.cache import DEFAULT_CACHE_CAPACITY, CacheStats, CachingIndex
from repro.index.inverted import InvertedIndex
from repro.index.irtree import IRTree, IRTreeNode
from repro.index.neighbors import LinearScanIndex
from repro.index.protocol import SpatialTextIndex
from repro.index.rtext import RTreeTextIndex
from repro.index.rtree import DEFAULT_MAX_ENTRIES, RTree, RTreeNode
from repro.index.signatures import mask_of, pack_masks, signatures_enabled

__all__ = [
    "SpatialTextIndex",
    "InvertedIndex",
    "CachingIndex",
    "CacheStats",
    "DEFAULT_CACHE_CAPACITY",
    "RTree",
    "RTreeNode",
    "RTreeTextIndex",
    "IRTree",
    "IRTreeNode",
    "LinearScanIndex",
    "DEFAULT_MAX_ENTRIES",
    "mask_of",
    "pack_masks",
    "signatures_enabled",
]
