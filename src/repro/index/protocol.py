"""The structural interface every spatial-textual index implements.

:class:`SearchContext` accepts any "IR-tree-shaped" index — the real
:class:`~repro.index.irtree.IRTree` or the
:class:`~repro.index.neighbors.LinearScanIndex` oracle used by the
ablation benchmarks.  Until now that contract lived only in prose
("drop-in replacement"); :class:`SpatialTextIndex` pins it down as a
:class:`typing.Protocol` so the annotation on ``SearchContext.index_cls``
actually says what is required, and new backends (quadtrees, grid files,
sharded remotes) can be checked structurally instead of by inheritance.
"""

from __future__ import annotations

from typing import (
    Dict,
    FrozenSet,
    Iterator,
    List,
    Protocol,
    Sequence,
    Tuple,
    runtime_checkable,
)

from repro.geometry.circle import Circle
from repro.geometry.point import Point
from repro.model.dataset import Dataset
from repro.model.objects import SpatialObject
from repro.model.query import Query

__all__ = ["SpatialTextIndex"]


@runtime_checkable
class SpatialTextIndex(Protocol):
    """The query mix the CoSKQ algorithms need from an index.

    Every method mirrors the IR-tree's documented semantics; see
    :mod:`repro.index.irtree` for the reference implementation and
    :mod:`repro.index.neighbors` for the linear-scan oracle.
    """

    @classmethod
    def build(cls, dataset: Dataset, max_entries: int = ...) -> "SpatialTextIndex":
        """Construct the index over every object of ``dataset``."""
        ...

    def __len__(self) -> int:
        """Number of indexed objects."""
        ...

    def keyword_nn(
        self, point: Point, keyword_id: int
    ) -> Tuple[float, SpatialObject] | None:
        """``NN(point, t)`` — nearest object carrying the keyword, or None."""
        ...

    def nearest_relevant_iter(
        self, point: Point, keywords: FrozenSet[int], within: Circle | None = None
    ) -> Iterator[Tuple[float, SpatialObject]]:
        """Relevant objects by ascending distance, optionally disk-bounded."""
        ...

    def nearest_neighbor_set(self, query: Query) -> Dict[int, Tuple[float, SpatialObject]]:
        """The paper's ``N(q)``: keyword id → ``(distance, NN(q, t))``."""
        ...

    def relevant_in_circle(
        self, circle: Circle, keywords: FrozenSet[int]
    ) -> List[SpatialObject]:
        """Objects in the closed disk carrying any keyword of ``keywords``."""
        ...

    def relevant_in_region(
        self, circles: Sequence[Circle], keywords: FrozenSet[int]
    ) -> List[SpatialObject]:
        """Relevant objects inside the intersection of all ``circles``."""
        ...

    def relevant_objects(self, keywords: FrozenSet[int]) -> List[SpatialObject]:
        """Every object carrying any keyword of ``keywords``.

        Must enumerate in the same traversal order as
        :meth:`relevant_in_region` so that spatially filtering this list
        reproduces a region query's output exactly (the owner-driven
        search memoizes it per query; see ``docs/PERFORMANCE.md``).
        """
        ...

    def objects_in_circle(self, circle: Circle) -> List[SpatialObject]:
        """All objects in the closed disk, regardless of keywords."""
        ...
