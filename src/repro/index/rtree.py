"""A point R-tree with quadratic-split insertion and STR bulk loading.

This is the plain spatial index underneath the IR-tree.  It stores
``(Point, payload)`` entries and answers:

- circle range queries (payloads within a disk),
- best-first incremental nearest-neighbor iteration,
- k-nearest-neighbor queries.

The implementation follows Guttman's R-tree for dynamic insertion
(quadratic split) and the Sort-Tile-Recursive (STR) recipe for bulk
loading, which is how the benchmark datasets are indexed.
"""

from __future__ import annotations

import heapq
import itertools
import math
from array import array
from typing import Generic, Iterable, Iterator, List, Optional, Sequence, Tuple, TypeVar, Union

from repro.geometry.circle import Circle
from repro.geometry.mbr import MBR
from repro.geometry.point import Point
from repro.kernels import cap_bands, kernels_enabled

__all__ = ["RTree", "RTreeNode", "DEFAULT_MAX_ENTRIES"]

T = TypeVar("T")

DEFAULT_MAX_ENTRIES = 16


class RTreeNode(Generic[T]):
    """One R-tree node.

    Leaf nodes keep parallel lists ``points``/``payloads``; internal nodes
    keep ``children``.  ``mbr`` always tightly bounds the subtree.

    Leaves additionally mirror entry coordinates into packed double
    arrays ``xs``/``ys`` (struct-of-arrays) so leaf distance scans read
    contiguous doubles instead of chasing ``Point`` attributes.  The
    columns hold exactly the same doubles as ``points`` — every distance
    computed from them is bit-identical to the scalar path.
    """

    __slots__ = ("is_leaf", "points", "payloads", "children", "mbr", "xs", "ys")

    def __init__(self, is_leaf: bool):
        self.is_leaf = is_leaf
        self.points: List[Point] = []
        self.payloads: List[T] = []
        self.children: List["RTreeNode[T]"] = []
        self.mbr: Optional[MBR] = None
        self.xs: array = array("d")
        self.ys: array = array("d")

    def entry_count(self) -> int:
        return len(self.points) if self.is_leaf else len(self.children)

    def recompute_mbr(self) -> None:
        if self.is_leaf:
            self.mbr = MBR.from_points(self.points) if self.points else None
            self.xs = array("d", (p.x for p in self.points))
            self.ys = array("d", (p.y for p in self.points))
        else:
            rects = [c.mbr for c in self.children if c.mbr is not None]
            self.mbr = MBR.union_all(rects) if rects else None

    def extend_mbr(self, rect: MBR) -> None:
        self.mbr = rect if self.mbr is None else self.mbr.union(rect)


class RTree(Generic[T]):
    """A dynamic R-tree over point entries."""

    def __init__(self, max_entries: int = DEFAULT_MAX_ENTRIES):
        if max_entries < 4:
            raise ValueError("max_entries must be at least 4")
        self.max_entries = max_entries
        self.min_entries = max(2, max_entries // 3)
        self.root: RTreeNode[T] = RTreeNode(is_leaf=True)
        self._size = 0

    # -- construction --------------------------------------------------------

    @classmethod
    def bulk_load(
        cls,
        entries: Sequence[Tuple[Point, T]],
        max_entries: int = DEFAULT_MAX_ENTRIES,
    ) -> "RTree[T]":
        """Build a packed tree with Sort-Tile-Recursive loading."""
        tree = cls(max_entries=max_entries)
        if not entries:
            return tree
        leaves: List[RTreeNode[T]] = []
        for chunk in _str_tiles(entries, max_entries):
            leaf: RTreeNode[T] = RTreeNode(is_leaf=True)
            for point, payload in chunk:
                leaf.points.append(point)
                leaf.payloads.append(payload)
            leaf.recompute_mbr()
            leaves.append(leaf)
        tree.root = _pack_upward(leaves, max_entries)
        tree._size = len(entries)
        return tree

    def insert(self, point: Point, payload: T) -> None:
        """Insert one entry (Guttman ChooseLeaf + quadratic split)."""
        split = self._insert_into(self.root, point, payload)
        if split is not None:
            old_root = self.root
            new_root: RTreeNode[T] = RTreeNode(is_leaf=False)
            new_root.children = [old_root, split]
            new_root.recompute_mbr()
            self.root = new_root
        self._size += 1

    def _insert_into(
        self, node: RTreeNode[T], point: Point, payload: T
    ) -> Optional[RTreeNode[T]]:
        point_rect = MBR.from_point(point)
        if node.is_leaf:
            node.points.append(point)
            node.payloads.append(payload)
            # extend_mbr below skips the full recompute, so the packed
            # columns must be appended in lockstep here.
            node.xs.append(point.x)
            node.ys.append(point.y)
            node.extend_mbr(point_rect)
            if len(node.points) > self.max_entries:
                return self._split_leaf(node)
            return None
        child = _choose_subtree(node.children, point_rect)
        split = self._insert_into(child, point, payload)
        if split is not None:
            node.children.append(split)
            if len(node.children) > self.max_entries:
                overflow = self._split_internal(node)
                return overflow
        node.recompute_mbr()
        return None

    def _split_leaf(self, node: RTreeNode[T]) -> RTreeNode[T]:
        rects = [MBR.from_point(p) for p in node.points]
        group_a, group_b = _quadratic_split(rects, self.min_entries)
        points, payloads = node.points, node.payloads
        new_node: RTreeNode[T] = RTreeNode(is_leaf=True)
        node.points = [points[i] for i in group_a]
        node.payloads = [payloads[i] for i in group_a]
        new_node.points = [points[i] for i in group_b]
        new_node.payloads = [payloads[i] for i in group_b]
        node.recompute_mbr()
        new_node.recompute_mbr()
        return new_node

    def _split_internal(self, node: RTreeNode[T]) -> RTreeNode[T]:
        rects = [c.mbr for c in node.children]  # children of a parent have MBRs
        group_a, group_b = _quadratic_split(rects, self.min_entries)
        children = node.children
        new_node: RTreeNode[T] = RTreeNode(is_leaf=False)
        node.children = [children[i] for i in group_a]
        new_node.children = [children[i] for i in group_b]
        node.recompute_mbr()
        new_node.recompute_mbr()
        return new_node

    # -- queries -------------------------------------------------------------

    def __len__(self) -> int:
        return self._size

    def range_search(self, circle: Circle) -> List[T]:
        """Payloads of all entries inside the closed disk ``circle``."""
        out: List[T] = []
        if self.root.mbr is None:
            return out
        stack = [self.root]
        radius = circle.radius
        center = circle.center
        use_flat = kernels_enabled()
        cx, cy = center.x, center.y
        if use_flat:
            lo2, hi2, fast = cap_bands(radius)
        else:
            lo2 = hi2 = 0.0
            fast = False
        while stack:
            node = stack.pop()
            if node.mbr is None or not circle.intersects_mbr(node.mbr):
                continue
            if node.is_leaf:
                if use_flat:
                    # Packed-column scan: squared distance classifies
                    # conclusively outside the guard band; the ambiguous
                    # sliver falls back to the exact hypot test.
                    xs, ys, payloads = node.xs, node.ys, node.payloads
                    for i in range(len(xs)):
                        dx = cx - xs[i]
                        dy = cy - ys[i]
                        sq = dx * dx + dy * dy
                        if fast:
                            if sq < lo2:
                                out.append(payloads[i])
                                continue
                            if sq > hi2:
                                continue
                        if math.hypot(dx, dy) <= radius:
                            out.append(payloads[i])
                    continue
                # Non-squared distance, matching MBR min_distance exactly.
                for point, payload in zip(node.points, node.payloads):
                    if center.distance_to(point) <= radius:
                        out.append(payload)
            else:
                stack.extend(node.children)
        return out

    def nearest_iter(self, point: Point) -> Iterator[Tuple[float, Point, T]]:
        """Yield entries in ascending distance from ``point`` (best-first).

        The classic incremental nearest-neighbor traversal: a single heap
        mixes nodes (keyed by MBR min-distance) and entries (keyed by
        exact distance); popping an entry before any node proves it is the
        next nearest.
        """
        if self.root.mbr is None:
            return
        counter = itertools.count()
        # Heap entries are either unopened nodes or materialized entries.
        heap: List[
            Tuple[float, int, bool, Union["RTreeNode[T]", Tuple[Point, T]]]
        ] = []
        heapq.heappush(
            heap, (self.root.mbr.min_distance(point), next(counter), False, self.root)
        )
        while heap:
            dist, _, is_entry, item = heapq.heappop(heap)
            if is_entry:
                entry_point, payload = item
                yield dist, entry_point, payload
                continue
            node: RTreeNode[T] = item
            if node.is_leaf:
                if kernels_enabled():
                    px, py = point.x, point.y
                    xs, ys = node.xs, node.ys
                    points, payloads = node.points, node.payloads
                    for i in range(len(xs)):
                        d = math.hypot(px - xs[i], py - ys[i])
                        heapq.heappush(
                            heap, (d, next(counter), True, (points[i], payloads[i]))
                        )
                    continue
                for entry_point, payload in zip(node.points, node.payloads):
                    d = point.distance_to(entry_point)
                    heapq.heappush(
                        heap, (d, next(counter), True, (entry_point, payload))
                    )
            else:
                for child in node.children:
                    if child.mbr is not None:
                        heapq.heappush(
                            heap,
                            (child.mbr.min_distance(point), next(counter), False, child),
                        )

    def nearest(self, point: Point, k: int = 1) -> List[Tuple[float, T]]:
        """The ``k`` nearest payloads with their distances."""
        out: List[Tuple[float, T]] = []
        for dist, _, payload in self.nearest_iter(point):
            out.append((dist, payload))
            if len(out) >= k:
                break
        return out

    # -- introspection (used by tests) ----------------------------------------

    def height(self) -> int:
        h = 1
        node = self.root
        while not node.is_leaf:
            node = node.children[0]
            h += 1
        return h

    def check_invariants(self) -> None:
        """Raise AssertionError if structural invariants are violated."""
        count = _check_node(self.root, self.max_entries, is_root=True)
        assert count == self._size, "entry count %d != size %d" % (count, self._size)

    def all_entries(self) -> Iterator[Tuple[Point, T]]:
        stack = [self.root]
        while stack:
            node = stack.pop()
            if node.is_leaf:
                yield from zip(node.points, node.payloads)
            else:
                stack.extend(node.children)


# -- helpers ------------------------------------------------------------------


def _choose_subtree(children: Sequence[RTreeNode[T]], rect: MBR) -> RTreeNode[T]:
    """Guttman ChooseLeaf: least enlargement, ties by area."""
    best = children[0]
    best_key = (math.inf, math.inf)
    for child in children:
        if child.mbr is None:
            return child
        key = (child.mbr.enlargement(rect), child.mbr.area())
        if key < best_key:
            best_key = key
            best = child
    return best


def _quadratic_split(
    rects: Sequence[MBR], min_entries: int
) -> Tuple[List[int], List[int]]:
    """Guttman quadratic split over entry rectangles, returning index groups."""
    n = len(rects)
    # PickSeeds: the pair wasting the most area together.
    seed_a, seed_b, worst = 0, 1, -math.inf
    for i in range(n):
        for j in range(i + 1, n):
            waste = rects[i].union(rects[j]).area() - rects[i].area() - rects[j].area()
            if waste > worst:
                worst = waste
                seed_a, seed_b = i, j
    group_a, group_b = [seed_a], [seed_b]
    mbr_a, mbr_b = rects[seed_a], rects[seed_b]
    remaining = [i for i in range(n) if i != seed_a and i != seed_b]
    while remaining:
        # Force-assign when one group must take everything left.
        if len(group_a) + len(remaining) == min_entries:
            group_a.extend(remaining)
            break
        if len(group_b) + len(remaining) == min_entries:
            group_b.extend(remaining)
            break
        # PickNext: entry with the largest preference for one group.
        best_i = -1
        best_diff = -math.inf
        for idx, i in enumerate(remaining):
            d_a = mbr_a.enlargement(rects[i])
            d_b = mbr_b.enlargement(rects[i])
            diff = abs(d_a - d_b)
            if diff > best_diff:
                best_diff = diff
                best_i = idx
        i = remaining.pop(best_i)
        d_a = mbr_a.enlargement(rects[i])
        d_b = mbr_b.enlargement(rects[i])
        if (d_a, mbr_a.area(), len(group_a)) <= (d_b, mbr_b.area(), len(group_b)):
            group_a.append(i)
            mbr_a = mbr_a.union(rects[i])
        else:
            group_b.append(i)
            mbr_b = mbr_b.union(rects[i])
    return group_a, group_b


def _str_tiles(
    entries: Sequence[Tuple[Point, T]], capacity: int
) -> Iterator[List[Tuple[Point, T]]]:
    """Partition entries into leaf-sized tiles with the STR recipe."""
    n = len(entries)
    leaf_count = math.ceil(n / capacity)
    slice_count = math.ceil(math.sqrt(leaf_count))
    by_x = sorted(entries, key=lambda e: (e[0].x, e[0].y))
    slice_size = math.ceil(n / slice_count)
    for start in range(0, n, slice_size):
        vertical = sorted(
            by_x[start : start + slice_size], key=lambda e: (e[0].y, e[0].x)
        )
        for leaf_start in range(0, len(vertical), capacity):
            yield vertical[leaf_start : leaf_start + capacity]


def _pack_upward(nodes: List[RTreeNode[T]], capacity: int) -> RTreeNode[T]:
    """Stack node levels until a single root remains."""
    if not nodes:
        return RTreeNode(is_leaf=True)
    while len(nodes) > 1:
        parents: List[RTreeNode[T]] = []
        nodes.sort(
            key=lambda nd: (nd.mbr.center().x, nd.mbr.center().y)
            if nd.mbr is not None
            else (0.0, 0.0)
        )
        for start in range(0, len(nodes), capacity):
            parent: RTreeNode[T] = RTreeNode(is_leaf=False)
            parent.children = nodes[start : start + capacity]
            parent.recompute_mbr()
            parents.append(parent)
        nodes = parents
    return nodes[0]


def _check_node(node: RTreeNode[T], max_entries: int, is_root: bool) -> int:
    assert node.entry_count() <= max_entries, "node overflow"
    if not is_root:
        assert node.entry_count() >= 1, "empty non-root node"
    if node.is_leaf:
        if node.points:
            rect = MBR.from_points(node.points)
            assert node.mbr is not None and node.mbr.contains(rect), "loose leaf MBR"
        assert len(node.xs) == len(node.points), "stale leaf x column"
        assert len(node.ys) == len(node.points), "stale leaf y column"
        for i, p in enumerate(node.points):
            assert node.xs[i] == p.x and node.ys[i] == p.y, (
                "leaf coordinate column diverges from points"
            )
        return len(node.points)
    total = 0
    for child in node.children:
        assert child.mbr is not None, "internal child without MBR"
        assert node.mbr is not None and node.mbr.contains(child.mbr), "loose MBR"
        total += _check_node(child, max_entries, is_root=False)
    return total
