"""An R-tree + inverted-index composition of :class:`SpatialTextIndex`.

The IR-tree fuses keyword summaries into the spatial tree; this adapter
keeps the two concerns separate — a plain :class:`~repro.index.rtree.RTree`
for geometry, an :class:`~repro.index.inverted.InvertedIndex` for text,
and per-object keyword bitmasks (:mod:`repro.index.signatures`) to glue
them together at query time.  It exists as the *third* independent
implementation of the index protocol: the parity suite
(``tests/test_index_parity.py``) runs IR-tree, R-tree+inverted and the
linear-scan oracle against each other, so a bug in any one traversal
shows up as a three-way disagreement.

Ordering contract: ``relevant_objects`` and ``relevant_in_region``
enumerate in ascending-oid scan order (the same discipline as
``LinearScanIndex``), so filtering the former by the disk tests
reproduces the latter element-for-element as the protocol requires.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterator, List, Optional, Tuple

from repro.errors import InfeasibleQueryError
from repro.geometry.circle import Circle
from repro.geometry.point import Point
from repro.index.inverted import InvertedIndex
from repro.index.rtree import DEFAULT_MAX_ENTRIES, RTree
from repro.index.signatures import mask_of, signatures_enabled
from repro.model.dataset import Dataset
from repro.model.objects import SpatialObject
from repro.model.query import Query

__all__ = ["RTreeTextIndex"]


class RTreeTextIndex:
    """Answers the IR-tree query mix with an R-tree plus posting lists."""

    def __init__(self, dataset: Dataset, max_entries: int = DEFAULT_MAX_ENTRIES):
        self._objects = list(dataset.objects)
        self._masks = {o.oid: mask_of(o.keywords) for o in self._objects}
        self._inverted = InvertedIndex(dataset)
        self._rtree: RTree[SpatialObject] = RTree.bulk_load(
            [(o.location, o) for o in self._objects], max_entries=max_entries
        )

    @classmethod
    def build(
        cls, dataset: Dataset, max_entries: int = DEFAULT_MAX_ENTRIES
    ) -> "RTreeTextIndex":
        """Signature-compatible with :meth:`IRTree.build`."""
        return cls(dataset, max_entries=max_entries)

    def __len__(self) -> int:
        return len(self._objects)

    # -- relevance filter -----------------------------------------------------

    def _relevant(self, obj: SpatialObject, keywords: FrozenSet[int], w_mask: int) -> bool:
        if signatures_enabled():
            return bool(self._masks[obj.oid] & w_mask)
        return not obj.keywords.isdisjoint(keywords)  # repro: noqa(R9) — toggle-off baseline

    # -- queries --------------------------------------------------------------

    def nearest_relevant_iter(
        self, point: Point, keywords: FrozenSet[int], within: Circle | None = None
    ) -> Iterator[Tuple[float, SpatialObject]]:
        """Relevant objects by ascending distance (R-tree best-first)."""
        w_mask = mask_of(keywords) if signatures_enabled() else 0
        for dist, _, obj in self._rtree.nearest_iter(point):
            if not self._relevant(obj, keywords, w_mask):
                continue
            if within is not None and not within.contains(obj.location):
                continue
            yield dist, obj

    def keyword_nn(
        self, point: Point, keyword_id: int
    ) -> Optional[Tuple[float, SpatialObject]]:
        """Nearest object carrying ``keyword_id``."""
        if not self._inverted.posting_list(keyword_id):
            return None
        for hit in self.nearest_relevant_iter(point, frozenset((keyword_id,))):
            return hit
        return None

    def boolean_knn(self, query: Query, k: int) -> List[Tuple[float, SpatialObject]]:
        """The k nearest objects each covering all of ``q.ψ``."""
        out: List[Tuple[float, SpatialObject]] = []
        if k <= 0:
            return out
        use_sig = signatures_enabled()
        q_mask = mask_of(query.keywords) if use_sig else 0
        for dist, obj in self.nearest_relevant_iter(query.location, query.keywords):
            if use_sig:
                if q_mask & ~self._masks[obj.oid]:
                    continue
            elif not query.keywords <= obj.keywords:  # repro: noqa(R9) — toggle-off baseline
                continue
            out.append((dist, obj))
            if len(out) >= k:
                break
        return out

    def nearest_neighbor_set(
        self, query: Query
    ) -> Dict[int, Tuple[float, SpatialObject]]:
        """``N(q)``; raises on uncoverable keywords."""
        out: Dict[int, Tuple[float, SpatialObject]] = {}
        missing: List[int] = []
        for t in query.keywords:
            hit = self.keyword_nn(query.location, t)
            if hit is None:
                missing.append(t)
            else:
                out[t] = hit
        if missing:
            raise InfeasibleQueryError(missing)
        return out

    def relevant_in_circle(
        self, circle: Circle, keywords: FrozenSet[int]
    ) -> List[SpatialObject]:
        """Relevant objects inside the closed disk (R-tree range search)."""
        w_mask = mask_of(keywords) if signatures_enabled() else 0
        return [
            obj
            for obj in self._rtree.range_search(circle)
            if self._relevant(obj, keywords, w_mask)
        ]

    def relevant_in_region(
        self, circles, keywords: FrozenSet[int]
    ) -> List[SpatialObject]:
        """Relevant objects inside the intersection of all ``circles``."""
        w_mask = mask_of(keywords) if signatures_enabled() else 0
        return [
            obj
            for obj in self._objects
            if self._relevant(obj, keywords, w_mask)
            and all(c.contains(obj.location) for c in circles)
        ]

    def relevant_objects(self, keywords: FrozenSet[int]) -> List[SpatialObject]:
        """Every relevant object, in the scan order of ``relevant_in_region``."""
        w_mask = mask_of(keywords) if signatures_enabled() else 0
        return [obj for obj in self._objects if self._relevant(obj, keywords, w_mask)]

    def objects_in_circle(self, circle: Circle) -> List[SpatialObject]:
        """All objects inside the closed disk."""
        return self._rtree.range_search(circle)
