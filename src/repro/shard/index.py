"""The sharded spatial-textual index: N IR-trees behind one facade.

:class:`ShardedIndex` STR-partitions a dataset (:mod:`repro.shard.partition`)
and bulk-loads one :class:`~repro.index.irtree.IRTree` per tile.  The
facade conforms to :class:`~repro.index.protocol.SpatialTextIndex`, so
every registered solver runs over it unchanged; the differential suite
(``tests/test_differential_shard.py``) asserts the answers are
bit-identical to a single IR-tree over the same data.

Merge disciplines, chosen so each facade method keeps the contract its
single-tree counterpart documents:

- ``nearest_relevant_iter`` is a lazy k-way merge: each shard enters the
  heap as a *stub* keyed by its MBR lower bound and is only expanded —
  its tree traversal started — when that bound reaches the front.  A
  shard the query never gets close to is never touched.
- ``keyword_nn`` probes shards in ascending MBR-lower-bound order and
  stops as soon as the bound can no longer improve on the best hit.
- The bulk retrievals (``relevant_in_circle`` / ``relevant_in_region`` /
  ``relevant_objects`` / ``objects_in_circle``) concatenate per-shard
  results in fixed ``shard_id`` order.  Spatially filtering a
  concatenation equals concatenating the filtered lists, so the
  protocol's memoization contract — ``relevant_objects`` enumerates in
  the same traversal order ``relevant_in_region`` filters — holds for
  the facade exactly because it holds per shard.

Thread safety mirrors the PR-7 :class:`~repro.index.cache.CachingIndex`
pattern: the shards, trees and summaries are immutable after ``build``
and shared read-only across request threads; the only mutable state is
the observability counter block, guarded by one ``RLock`` and excluded
from pickling (forked workers start with fresh counters).
"""

from __future__ import annotations

import heapq
import itertools
import math
import threading
from typing import Dict, FrozenSet, Iterator, List, Optional, Sequence, Tuple

from repro.errors import InfeasibleQueryError, InvalidParameterError
from repro.geometry.circle import Circle
from repro.geometry.mbr import MBR
from repro.geometry.point import Point
from repro.index.irtree import IRTree
from repro.index.signatures import covers, mask_of, overlaps
from repro.model.dataset import Dataset
from repro.model.objects import SpatialObject
from repro.model.query import Query
from repro.shard.partition import ShardSummary, str_partition, summarize

__all__ = ["DEFAULT_NUM_SHARDS", "Shard", "ShardedIndex", "ShardedIndexFactory"]

#: Default shard count for ``--shards`` flags that take a bare toggle.
DEFAULT_NUM_SHARDS = 8


class Shard:
    """One tile: its IR-tree and its read-only pruning summary."""

    __slots__ = ("shard_id", "tree", "summary")

    def __init__(self, shard_id: int, tree: IRTree, summary: ShardSummary):
        self.shard_id = shard_id
        self.tree = tree
        self.summary = summary

    def __repr__(self) -> str:
        return "Shard(%d, %d objects)" % (self.shard_id, self.summary.count)


class _ShardStats:
    """RLock-guarded observability counters (the facade's only mutable state)."""

    def __init__(self) -> None:
        self._lock = threading.RLock()
        self._counts: Dict[str, int] = {}

    def bump(self, counter: str, amount: int = 1) -> None:
        with self._lock:
            self._counts[counter] = self._counts.get(counter, 0) + amount

    def as_dict(self) -> Dict[str, int]:
        with self._lock:
            return dict(self._counts)

    def __getstate__(self) -> Dict[str, int]:
        with self._lock:
            return dict(self._counts)

    def __setstate__(self, state: Dict[str, int]) -> None:
        self._lock = threading.RLock()
        self._counts = dict(state)


class ShardedIndex:
    """A :class:`SpatialTextIndex` facade over STR-partitioned IR-trees."""

    def __init__(self, shards: Sequence[Shard], num_shards_requested: int):
        self._shards: Tuple[Shard, ...] = tuple(shards)
        self.num_shards_requested = num_shards_requested
        self._size = sum(shard.summary.count for shard in self._shards)
        self.stats = _ShardStats()
        # Flat probe table for the per-call hot loops (keyword_nn and
        # nearest_relevant_iter run once per owner per keyword): MBR
        # corners, keyword mask, id and tree unpacked once so the loops
        # do no attribute chasing.
        self._probe: Tuple[Tuple[float, float, float, float, int, int, IRTree], ...] = tuple(
            (
                shard.summary.mbr.min_x,
                shard.summary.mbr.min_y,
                shard.summary.mbr.max_x,
                shard.summary.mbr.max_y,
                shard.summary.kw_mask,
                shard.shard_id,
                shard.tree,
            )
            for shard in self._shards
        )
        # Single-keyword probe rows, memoized per keyword bit: the
        # owner-driven solvers anchor one single-keyword traversal per
        # owner per uncovered keyword, so the mask filter would otherwise
        # re-scan every shard tens of thousands of times per query.  The
        # memo is vocabulary-bounded (one entry per keyword bit seen) and
        # the benign CPython dict race writes an idempotent value, so no
        # lock is needed (multi-bit masks are filtered inline instead —
        # their space is combinatorial).
        self._single_rows: Dict[int, Tuple[Tuple[float, float, float, float, int, int, IRTree], ...]] = {}

    def _mask_rows(
        self, q_mask: int
    ) -> Tuple[Tuple[float, float, float, float, int, int, IRTree], ...]:
        """Probe rows whose shard carries a keyword of ``q_mask``."""
        if q_mask & (q_mask - 1) == 0:
            rows = self._single_rows.get(q_mask)
            if rows is None:
                rows = tuple(row for row in self._probe if row[4] & q_mask)
                self._single_rows[q_mask] = rows
            return rows
        return tuple(row for row in self._probe if row[4] & q_mask)

    # -- construction --------------------------------------------------------

    @classmethod
    def build(
        cls,
        dataset: Dataset,
        max_entries: int = 16,
        num_shards: int = DEFAULT_NUM_SHARDS,
    ) -> "ShardedIndex":
        """STR-partition ``dataset`` and bulk-load one IR-tree per tile."""
        tiles = str_partition(list(dataset), num_shards)
        shards = [
            Shard(
                shard_id,
                IRTree.build(members, max_entries=max_entries),
                summarize(shard_id, members),
            )
            for shard_id, members in enumerate(tiles)
        ]
        return cls(shards, num_shards_requested=num_shards)

    def restricted(self, shard_ids: Sequence[int]) -> "ShardedIndex":
        """A facade over a subset of shards (trees and summaries shared).

        The restricted view gets its own stats block; the shard objects
        themselves are the originals — no data is copied.
        """
        keep = frozenset(shard_ids)
        unknown = keep - {shard.shard_id for shard in self._shards}
        if unknown:
            raise InvalidParameterError(
                "unknown shard ids %s" % sorted(unknown)
            )
        view = ShardedIndex(
            [shard for shard in self._shards if shard.shard_id in keep],
            num_shards_requested=self.num_shards_requested,
        )
        return view

    # -- shard surface (read by the scatter-gather engine) -------------------

    @property
    def shards(self) -> Tuple[Shard, ...]:
        return self._shards

    @property
    def shard_count(self) -> int:
        return len(self._shards)

    @property
    def summaries(self) -> List[ShardSummary]:
        return [shard.summary for shard in self._shards]

    def extent(self) -> MBR:
        """The union of all shard MBRs (the dataset extent)."""
        return MBR.union_all([shard.summary.mbr for shard in self._shards])

    # -- SpatialTextIndex protocol -------------------------------------------

    def __len__(self) -> int:
        return self._size

    def keyword_nn(
        self, point: Point, keyword_id: int
    ) -> Optional[Tuple[float, SpatialObject]]:
        """``NN(point, t)`` across shards, best-bound-first with early stop.

        Shard bounds are the exact point-to-rectangle distances (inlined
        clamped-offset ``hypot``, the same arithmetic the IR-tree inlines
        for its node bounds).  Any object in a shard is at least that far
        away, so stopping once the next bound cannot beat the incumbent
        never discards a closer hit.
        """
        keyword_mask = mask_of((keyword_id,))
        px = point.x
        py = point.y
        hypot = math.hypot
        order: List[Tuple[float, int, IRTree]] = []
        for min_x, min_y, max_x, max_y, _kw_mask, shard_id, tree in self._mask_rows(keyword_mask):
            dx = min_x - px if px < min_x else (px - max_x if px > max_x else 0.0)
            dy = min_y - py if py < min_y else (py - max_y if py > max_y else 0.0)
            order.append((hypot(dx, dy), shard_id, tree))  # repro: noqa(R8) — inlined exact rectangle bound, same arithmetic as MBR.min_distance sans its zero-epsilon
        order.sort()
        best: Optional[Tuple[float, SpatialObject]] = None
        probes = 0
        for bound, _, tree in order:
            if best is not None and bound >= best[0]:
                break
            probes += 1
            hit = tree.keyword_nn(point, keyword_id)
            if hit is not None and (best is None or hit[0] < best[0]):
                best = hit
        self.stats.bump("keyword_nn_calls")
        self.stats.bump("keyword_nn_shard_probes", probes)
        return best

    def nearest_relevant_iter(
        self, point: Point, keywords: FrozenSet[int], within: Circle | None = None
    ) -> Iterator[Tuple[float, SpatialObject]]:
        """Ascending-distance merge of the shards' relevant streams.

        Heap entries are ``(key, kind, shard_id, payload)`` where a stub
        (``kind=1``) holds the un-started shard traversal and an entry
        (``kind=0``) holds one pulled object plus its generator.  Each
        shard has at most one element in the heap, so the first three
        fields are always a unique sort key and the payloads are never
        compared.  A popped object's distance is a lower bound for every
        remaining heap element, which makes the merged stream globally
        ascending.

        The owner-driven solvers call this once per owner per keyword
        with a small ``within`` disk, so the setup loop is the facade's
        hottest path: shard bounds are exact point-to-rectangle
        distances via inlined clamped-offset ``hypot`` (admissible —
        every shard object is at least that far from the anchor), a
        shard whose rectangle lies strictly outside the closed ``within``
        disk is skipped (its objects would all fail the traversal's
        exact membership test), and when exactly one shard survives the
        merge is the identity, so the traversal is handed over wholesale
        with no heap at all.
        """
        q_mask = mask_of(keywords)
        px = point.x
        py = point.y
        hypot = math.hypot
        if within is not None:
            wx = within.center.x
            wy = within.center.y
            w_radius = within.radius
        live: List[Tuple[float, int, IRTree]] = []
        for min_x, min_y, max_x, max_y, _kw_mask, shard_id, tree in self._mask_rows(q_mask):
            if within is not None:
                dx = min_x - wx if wx < min_x else (wx - max_x if wx > max_x else 0.0)
                dy = min_y - wy if wy < min_y else (wy - max_y if wy > max_y else 0.0)
                if hypot(dx, dy) > w_radius:  # repro: noqa(R8) — exact rectangle-vs-disk test matching the tree's strict membership
                    continue
            dx = min_x - px if px < min_x else (px - max_x if px > max_x else 0.0)
            dy = min_y - py if py < min_y else (py - max_y if py > max_y else 0.0)
            live.append((hypot(dx, dy), shard_id, tree))  # repro: noqa(R8) — inlined exact rectangle bound (hot path, see docstring)
        stats = self.stats
        stats.bump("relevant_iter_calls")
        if not live:
            return
        if len(live) == 1:
            stats.bump("relevant_iter_shards_expanded")
            yield from live[0][2].nearest_relevant_iter(point, keywords, within=within)
            return
        heap: List[Tuple[float, int, int, object]] = [
            (bound, 1, shard_id, tree) for bound, shard_id, tree in live
        ]
        heapq.heapify(heap)
        while heap:  # repro: noqa(R11) — bounded k-way merge; budget hooks live in the consuming solver
            key, kind, shard_id, payload = heapq.heappop(heap)
            if kind == 1:
                stats.bump("relevant_iter_shards_expanded")
                stream = payload.nearest_relevant_iter(  # type: ignore[union-attr]
                    point, keywords, within=within
                )
                first = next(stream, None)
                if first is not None:
                    heapq.heappush(heap, (first[0], 0, shard_id, (first, stream)))
                continue
            (item, stream) = payload  # type: ignore[misc]
            yield item
            after = next(stream, None)
            if after is not None:
                heapq.heappush(heap, (after[0], 0, shard_id, (after, stream)))

    def nearest_neighbor_set(
        self, query: Query
    ) -> Dict[int, Tuple[float, SpatialObject]]:
        """The paper's ``N(q)``, with the single-tree missing-keyword error."""
        out: Dict[int, Tuple[float, SpatialObject]] = {}
        missing: List[int] = []
        for keyword_id in sorted(query.keywords):
            hit = self.keyword_nn(query.location, keyword_id)
            if hit is None:
                missing.append(keyword_id)
            else:
                out[keyword_id] = hit
        if missing:
            raise InfeasibleQueryError(frozenset(missing))
        return out

    def relevant_in_circle(
        self, circle: Circle, keywords: FrozenSet[int]
    ) -> List[SpatialObject]:
        q_mask = mask_of(keywords)
        out: List[SpatialObject] = []
        for shard in self._shards:
            summary = shard.summary
            if not overlaps(q_mask, summary.kw_mask):
                continue
            if summary.mbr.min_distance(circle.center) > circle.radius:
                continue
            out.extend(shard.tree.relevant_in_circle(circle, keywords))
        return out

    def relevant_in_region(
        self, circles: Sequence[Circle], keywords: FrozenSet[int]
    ) -> List[SpatialObject]:
        q_mask = mask_of(keywords)
        out: List[SpatialObject] = []
        for shard in self._shards:
            summary = shard.summary
            if not overlaps(q_mask, summary.kw_mask):
                continue
            if any(
                summary.mbr.min_distance(circle.center) > circle.radius
                for circle in circles
            ):
                continue
            out.extend(shard.tree.relevant_in_region(circles, keywords))
        return out

    def relevant_objects(self, keywords: FrozenSet[int]) -> List[SpatialObject]:
        q_mask = mask_of(keywords)
        out: List[SpatialObject] = []
        for shard in self._shards:
            if not overlaps(q_mask, shard.summary.kw_mask):
                continue
            out.extend(shard.tree.relevant_objects(keywords))
        return out

    def objects_in_circle(self, circle: Circle) -> List[SpatialObject]:
        out: List[SpatialObject] = []
        for shard in self._shards:
            if shard.summary.mbr.min_distance(circle.center) > circle.radius:
                continue
            out.extend(shard.tree.objects_in_circle(circle))
        return out

    def boolean_knn(self, query: Query, k: int) -> List[Tuple[float, SpatialObject]]:
        """Top-``k`` covering objects: merge the covering shards' lists.

        Only shards whose keyword union covers the whole query mask can
        contain a covering object, so the rest are skipped outright.
        """
        if k < 1:
            raise InvalidParameterError("k must be >= 1")
        q_mask = mask_of(query.keywords)
        per_shard = [
            shard.tree.boolean_knn(query, k)
            for shard in self._shards
            if covers(q_mask, shard.summary.kw_mask)
        ]
        merged = heapq.merge(
            *(
                ((dist, shard_pos, rank, obj) for rank, (dist, obj) in enumerate(hits))
                for shard_pos, hits in enumerate(per_shard)
            )
        )
        return [(dist, obj) for dist, _, _, obj in itertools.islice(merged, k)]

    # -- diagnostics ---------------------------------------------------------

    def height(self) -> int:
        return max((shard.tree.height() for shard in self._shards), default=1)

    def all_objects(self) -> Iterator[SpatialObject]:
        for shard in self._shards:
            yield from shard.tree.all_objects()

    def check_invariants(self) -> None:
        """Per-shard tree invariants plus the partition invariants."""
        seen: Dict[int, int] = {}
        for shard in self._shards:
            shard.tree.check_invariants()
            summary = shard.summary
            assert summary.count == len(shard.tree), "summary count drifted"
            union_mask = 0
            for obj in shard.tree.all_objects():
                assert summary.mbr.contains_point(obj.location), (
                    "object %d escapes its shard MBR" % obj.oid
                )
                assert obj.oid not in seen, (
                    "object %d appears in shards %d and %d"
                    % (obj.oid, seen[obj.oid], shard.shard_id)
                )
                seen[obj.oid] = shard.shard_id
                union_mask |= mask_of(obj.keywords)
            assert union_mask == summary.kw_mask, "summary mask drifted"
        assert len(seen) == self._size, "facade size drifted"

    def __repr__(self) -> str:
        return "ShardedIndex(%d shards, %d objects)" % (
            len(self._shards),
            self._size,
        )


class ShardedIndexFactory:
    """An ``index_cls`` stand-in binding a shard count.

    :class:`~repro.algorithms.base.SearchContext` builds its index via
    ``index_cls.build(dataset, max_entries=...)``; an instance of this
    class slots into that call while carrying ``num_shards``, so the
    sharded backend needs no SearchContext changes.  Instances are tiny
    and picklable — they ride inside :class:`~repro.parallel.spec.WorkerEnv`
    derived state into pool workers.
    """

    def __init__(self, num_shards: int = DEFAULT_NUM_SHARDS):
        if num_shards < 1:
            raise InvalidParameterError("num_shards must be >= 1")
        self.num_shards = num_shards

    def build(self, dataset: Dataset, max_entries: int = 16) -> ShardedIndex:
        return ShardedIndex.build(
            dataset, max_entries=max_entries, num_shards=self.num_shards
        )

    def __repr__(self) -> str:
        return "ShardedIndexFactory(num_shards=%d)" % self.num_shards
