"""Spatial sharding: STR-partitioned IR-trees + bound-driven scatter-gather.

Public surface (docs/SHARDING.md):

- :func:`~repro.shard.partition.str_partition` /
  :class:`~repro.shard.partition.ShardSummary` — the partitioner and the
  per-shard pruning summary;
- :class:`~repro.shard.index.ShardedIndex` — a
  :class:`~repro.index.protocol.SpatialTextIndex`-conforming facade over
  the shards, so every registered solver runs unchanged;
- :class:`~repro.shard.index.ShardedIndexFactory` — an ``index_cls``
  stand-in for :class:`~repro.algorithms.base.SearchContext` binding a
  shard count;
- :class:`~repro.shard.engine.ScatterGather` — the query engine that
  seeds an incumbent bound, prunes shards it proves irrelevant, and runs
  the inner solver over the survivors, bit-identical to the
  single-index baseline.
"""

from repro.shard.engine import MASK_ONLY_SOLVERS, ScatterGather
from repro.shard.index import (
    DEFAULT_NUM_SHARDS,
    Shard,
    ShardedIndex,
    ShardedIndexFactory,
)
from repro.shard.partition import ShardSummary, str_partition, summarize

__all__ = [
    "DEFAULT_NUM_SHARDS",
    "MASK_ONLY_SOLVERS",
    "ScatterGather",
    "Shard",
    "ShardedIndex",
    "ShardedIndexFactory",
    "ShardSummary",
    "str_partition",
    "summarize",
]
