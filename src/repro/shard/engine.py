"""Bound-driven scatter-gather over a :class:`ShardedIndex`.

:class:`ScatterGather` wraps any registry solver.  Per query it

1. computes ``N(q)`` through the sharded facade and scores it — the
   incumbent cost bound ``c`` (the same seed every owner-driven solver
   starts from);
2. optionally tightens ``c`` with a cheap
   :class:`~repro.algorithms.owner_appro.OwnerRingApproximation` pass on
   the single most promising shard whose keyword union covers the whole
   query (exact solvers only — an approximation is an upper bound on the
   optimum, so it can only shrink the search, never cut the answer);
3. prunes shards the bound proves irrelevant, and hands the survivors —
   as one restricted facade — to the inner solver.

Pruning rules and why they preserve bit-identity with the single-index
baseline (the full derivation is docs/SHARDING.md):

- **Mask rule** (always on): a shard whose keyword union misses every
  query keyword contains no relevant object.  Solvers only ever retrieve
  *relevant* objects from the spatial index, so dropping such shards is
  invisible to them.
- **Bound rule** (distance-eligible solvers): drop a shard when
  ``cost.combine(mbr.min_distance(q), 0) > c``.  Every object ``o`` in
  it then has ``combine(d(o,q), 0) > c ≥ optimum ≥ combine(d_f, 0)``
  (``combine`` is monotone in its first argument), so ``o`` can never be
  tried as an owner before the incumbent-cost break fires, and never
  falls inside a completion disk ``C(q, r)`` with ``combine(r, 0) < c``
  — the only two ways the owner-pattern solvers touch candidates.  The
  comparison carries a small relative slack so borderline shards are
  scanned rather than pruned: harmless for identity, immune to float
  noise in the bound arithmetic.

Solvers that reach *outside* the incumbent disk are not
distance-eligible and get the mask rule only: ``cao-appro1`` /
``cao-appro2`` complete via owner-anchored ``keyword_nn`` calls that no
incumbent bounds, and any run under a ``MIN``-aggregate cost has no
monotone owner bound at all.  Solvers that draw candidates from the
inverted index (the sum family, top-k, brute force, branch-and-bound)
are unaffected by index restriction either way.
"""

from __future__ import annotations

from typing import FrozenSet, List, Optional

from repro.adaptive.seeding import compute_seed
from repro.algorithms.base import CoSKQAlgorithm, SearchContext
from repro.algorithms.registry import make_algorithm
from repro.cost.base import CostFunction, QueryAggregate
from repro.errors import InvalidParameterError
from repro.index.signatures import covers, mask_of, overlaps
from repro.model.query import Query
from repro.model.result import CoSKQResult
from repro.shard.index import Shard, ShardedIndex
from repro.utils.floatcmp import prune_cutoff

__all__ = ["MASK_ONLY_SOLVERS", "ScatterGather"]

#: Solvers whose candidate retrieval is not bounded by the incumbent
#: disk (owner-anchored keyword-NN completions), so only the mask rule
#: may restrict their universe.
MASK_ONLY_SOLVERS = frozenset({"cao-appro1", "cao-appro2"})


class ScatterGather(CoSKQAlgorithm):  # repro: noqa(R1) — wrapper, not a registry solver; exact/name mirror the wrapped solver's in __init__
    """Run a registry solver over the surviving shards of a sharded index."""

    def __init__(
        self,
        context: SearchContext,
        algorithm: str,
        cost: Optional[CostFunction] = None,
    ):
        if not isinstance(context.index, ShardedIndex):
            raise InvalidParameterError(
                "ScatterGather needs a SearchContext over a ShardedIndex; "
                "got %r" % type(context.index).__name__
            )
        # Instantiated once to resolve the effective cost and exactness
        # (registry defaults included); per-query solves use a fresh
        # instance over the restricted facade.
        probe = make_algorithm(algorithm, context, cost)
        super().__init__(context, probe.cost)
        self.algorithm = algorithm
        self.exact = probe.exact
        self.ratio = probe.ratio
        self.ratio_cost = probe.ratio_cost
        self.name = probe.name

    # -- eligibility ---------------------------------------------------------

    @property
    def distance_eligible(self) -> bool:
        """Whether the bound rule may prune shards for this solver/cost."""
        return (
            self.cost.query_aggregate is not QueryAggregate.MIN
            and self.algorithm not in MASK_ONLY_SOLVERS
        )

    # -- solve ---------------------------------------------------------------

    def solve(
        self, query: Query, initial_upper_bound: Optional[float] = None
    ) -> CoSKQResult:
        self._reset_counters()
        index: ShardedIndex = self.context.index  # type: ignore[assignment]
        shards = index.shards
        self._bump("shards_total", len(shards))

        # The incumbent: N(q) through the facade (identical to the
        # single-tree N(q) — keyword-NNs merge across all shards), scored
        # by the target cost.  Raises InfeasibleQueryError exactly where
        # the baseline solver would.
        nn = self.context.nn_set(query)
        incumbent = self._evaluate(query, list(nn.objects))

        q_mask = mask_of(query.keywords)
        relevant = [
            shard for shard in shards if overlaps(q_mask, shard.summary.kw_mask)
        ]
        self._bump("shards_relevant", len(relevant))
        self._bump("shards_pruned_mask", len(shards) - len(relevant))

        survivors = relevant
        if self.distance_eligible:
            bound = incumbent
            if self.exact:
                bound = min(bound, self._seed_bound(query, q_mask, relevant, incumbent))
            if initial_upper_bound is not None:
                # An externally supplied feasible cost tightens the bound
                # rule too; prune_cutoff below re-applies the slack.
                bound = min(bound, initial_upper_bound)
            cutoff = prune_cutoff(bound)
            survivors = [
                shard
                for shard in relevant
                if self.cost.combine(
                    shard.summary.mbr.min_distance(query.location), 0.0
                )
                <= cutoff
            ]
            self._bump("shards_pruned_bound", len(relevant) - len(survivors))
        self._bump("shards_scanned", len(survivors))
        index.stats.bump("queries")  # repro: noqa(R10) — RLock-guarded observability counter, never read by search
        index.stats.bump("shards_scanned", len(survivors))  # repro: noqa(R10) — RLock-guarded observability counter
        index.stats.bump("shards_pruned", len(shards) - len(survivors))  # repro: noqa(R10) — RLock-guarded observability counter

        restricted = index.restricted([shard.shard_id for shard in survivors])
        inner = make_algorithm(
            self.algorithm, self.context.with_index(restricted), self.cost
        )
        inner.budget = self.budget
        # Only the *external* bound is forwarded: the engine's own seed
        # pass keeps tightening shard pruning alone, preserving the
        # engine's object-level identity with the single-index baseline.
        if initial_upper_bound is None:
            result = inner.solve(query)
        else:
            result = inner.solve(query, initial_upper_bound=initial_upper_bound)
        merged = dict(result.counters)
        for counter, amount in self.counters.items():
            merged[counter] = merged.get(counter, 0) + amount
        return CoSKQResult.of(
            result.objects, result.cost, result.algorithm, counters=merged
        )

    def _seed_bound(
        self,
        query: Query,
        q_mask: int,
        relevant: List[Shard],
        incumbent: float,
    ) -> float:
        """Appro pass on the most promising self-sufficient shard.

        Only shards whose keyword union covers the *whole* query can run
        the approximation alone; among those, the one whose MBR is
        closest to the query is the likeliest to hold a cheap feasible
        set.  The seeder itself comes from the shared seeding API
        (:func:`repro.adaptive.seeding.compute_seed`), so the
        structure→seeder dispatch lives in exactly one place.  Returns
        ``incumbent`` unchanged when no shard qualifies or no seeder
        exists for this cost.
        """
        covering = [
            shard for shard in relevant if covers(q_mask, shard.summary.kw_mask)
        ]
        if not covering:
            return incumbent
        target = min(
            covering,
            key=lambda shard: (
                shard.summary.mbr.min_distance(query.location),
                shard.shard_id,
            ),
        )
        index: ShardedIndex = self.context.index  # type: ignore[assignment]
        seed = compute_seed(
            self.context.with_index(index.restricted([target.shard_id])),
            self.cost,
            query,
            budget=self.budget,
        )
        if seed is None:
            return incumbent
        self._bump("seed_runs")
        return min(incumbent, seed.cost)
