"""STR spatial partitioning into keyword-summarized shards.

The sharded index (:mod:`repro.shard.index`) splits a dataset into a
grid of spatial tiles with the same Sort-Tile-Recursive discipline the
R-tree bulk loader uses (:func:`repro.index.rtree._str_tiles`, applied
once at shard granularity instead of leaf granularity): sort by ``x``
into near-equal vertical slices, then sort each slice by ``y`` and cut
it into near-equal tiles.  Every object lands in exactly one tile, and
tiles are spatially compact — which is what makes the per-shard MBR a
useful pruning bound.

Each shard carries a :class:`ShardSummary`: its MBR, its keyword union
(as a frozenset and as a signature mask, the PR-5 twin representation),
and its object count.  The summary is the *only* thing the query engine
reads before deciding to touch a shard, so it is deliberately tiny and
immutable — safe to share read-only across request threads
(docs/SHARDING.md).

Partition invariants (property-tested in ``tests/test_differential_shard.py``):

- every object is in exactly one shard;
- the realized shard count is exactly ``min(num_shards, len(objects))``
  and no shard is empty;
- each shard's MBR contains its members, and the union of shard MBRs
  equals the dataset extent;
- each summary's keyword union equals the OR of its member masks.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import FrozenSet, List, Sequence

from repro.errors import InvalidParameterError
from repro.geometry.mbr import MBR
from repro.index.signatures import mask_of
from repro.model.objects import SpatialObject

__all__ = ["ShardSummary", "str_partition", "summarize"]


@dataclass(frozen=True)
class ShardSummary:
    """The read-only pruning surface of one shard."""

    shard_id: int
    mbr: MBR
    keywords: FrozenSet[int]
    kw_mask: int
    count: int


def _near_equal_cuts(total: int, parts: int) -> List[int]:
    """Sizes of ``parts`` contiguous chunks of ``total`` items.

    The remainder is spread over the *leading* chunks, so the split is
    monotone in ``total``: chunk ``i`` of a larger total is never
    smaller than chunk ``i`` of a smaller total with the same ``parts``
    — which is what guarantees below that every tile of every slice is
    non-empty whenever ``total >= parts``.
    """
    base, remainder = divmod(total, parts)
    return [base + (1 if i < remainder else 0) for i in range(parts)]


def str_partition(
    objects: Sequence[SpatialObject], num_shards: int
) -> List[List[SpatialObject]]:
    """Split ``objects`` into ``min(num_shards, len(objects))`` STR tiles.

    Ties in coordinates are broken by ``oid`` so the partition is a pure
    function of the object set (no dependence on input order).
    """
    if num_shards < 1:
        raise InvalidParameterError("num_shards must be >= 1")
    pool = list(objects)
    if not pool:
        return []
    shards_wanted = min(num_shards, len(pool))
    slices = max(1, round(math.sqrt(shards_wanted)))  # repro: noqa(R8) — tile-grid arithmetic, not a distance
    by_x = sorted(pool, key=lambda o: (o.location.x, o.location.y, o.oid))
    slice_sizes = _near_equal_cuts(len(pool), slices)
    tile_counts = _near_equal_cuts(shards_wanted, slices)
    shards: List[List[SpatialObject]] = []
    start = 0
    for slice_size, tiles in zip(slice_sizes, tile_counts):
        band = sorted(
            by_x[start : start + slice_size],
            key=lambda o: (o.location.y, o.location.x, o.oid),
        )
        start += slice_size
        if tiles == 0:
            continue
        cut = 0
        for tile_size in _near_equal_cuts(len(band), tiles):
            shards.append(band[cut : cut + tile_size])
            cut += tile_size
    return shards


def summarize(shard_id: int, members: Sequence[SpatialObject]) -> ShardSummary:
    """The pruning summary of one shard (non-empty member list)."""
    if not members:
        raise InvalidParameterError("cannot summarize an empty shard")
    keywords: FrozenSet[int] = frozenset().union(*(o.keywords for o in members))
    return ShardSummary(
        shard_id=shard_id,
        mbr=MBR.from_points(o.location for o in members),
        keywords=keywords,
        kw_mask=mask_of(keywords),
        count=len(members),
    )
