"""Planar geometry substrate: points, rectangles, disks and lens regions."""

from repro.geometry.circle import Circle, Lens, Ring, lens_chord_length
from repro.geometry.mbr import MBR
from repro.geometry.point import (
    Point,
    centroid,
    diameter,
    distance,
    distance_xy,
    farthest_pair,
    midpoint,
    squared_distance,
)

__all__ = [
    "Point",
    "MBR",
    "Circle",
    "Lens",
    "Ring",
    "lens_chord_length",
    "distance",
    "distance_xy",
    "squared_distance",
    "midpoint",
    "centroid",
    "diameter",
    "farthest_pair",
]
