"""Minimum bounding rectangles (axis-aligned) for the R-tree family.

The R-tree and IR-tree prune subtrees with two classic bounds computed
here: ``min_distance`` (the smallest possible distance from a point to any
point of the rectangle — admissible for nearest-neighbor search) and
``max_distance`` (the largest possible distance — used for safe inclusion
in range queries).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Iterator, Sequence

from repro.geometry.point import Point
from repro.utils.floatcmp import is_zero

__all__ = ["MBR"]


@dataclass(frozen=True, slots=True)
class MBR:
    """An immutable axis-aligned rectangle ``[min_x, max_x] × [min_y, max_y]``."""

    min_x: float
    min_y: float
    max_x: float
    max_y: float

    def __post_init__(self) -> None:
        if self.min_x > self.max_x or self.min_y > self.max_y:
            raise ValueError(
                "degenerate MBR: (%r, %r, %r, %r)"
                % (self.min_x, self.min_y, self.max_x, self.max_y)
            )

    # -- constructors ------------------------------------------------------

    @staticmethod
    def from_point(p: Point) -> "MBR":
        """The degenerate rectangle containing exactly ``p``."""
        return MBR(p.x, p.y, p.x, p.y)

    @staticmethod
    def from_points(points: Iterable[Point]) -> "MBR":
        """The tightest rectangle containing all ``points`` (non-empty)."""
        it = iter(points)
        try:
            first = next(it)
        except StopIteration:
            raise ValueError("MBR.from_points() of an empty collection") from None
        min_x = max_x = first.x
        min_y = max_y = first.y
        for p in it:
            if p.x < min_x:
                min_x = p.x
            elif p.x > max_x:
                max_x = p.x
            if p.y < min_y:
                min_y = p.y
            elif p.y > max_y:
                max_y = p.y
        return MBR(min_x, min_y, max_x, max_y)

    @staticmethod
    def union_all(rects: Sequence["MBR"]) -> "MBR":
        """The tightest rectangle containing every rectangle in ``rects``."""
        if not rects:
            raise ValueError("MBR.union_all() of an empty collection")
        min_x = min(r.min_x for r in rects)
        min_y = min(r.min_y for r in rects)
        max_x = max(r.max_x for r in rects)
        max_y = max(r.max_y for r in rects)
        return MBR(min_x, min_y, max_x, max_y)

    # -- measures ----------------------------------------------------------

    @property
    def width(self) -> float:
        return self.max_x - self.min_x

    @property
    def height(self) -> float:
        return self.max_y - self.min_y

    def area(self) -> float:
        return self.width * self.height

    def margin(self) -> float:
        """Half-perimeter; the R*-style split quality measure."""
        return self.width + self.height

    def center(self) -> Point:
        return Point((self.min_x + self.max_x) / 2.0, (self.min_y + self.max_y) / 2.0)

    # -- set operations ----------------------------------------------------

    def union(self, other: "MBR") -> "MBR":
        return MBR(
            min(self.min_x, other.min_x),
            min(self.min_y, other.min_y),
            max(self.max_x, other.max_x),
            max(self.max_y, other.max_y),
        )

    def enlargement(self, other: "MBR") -> float:
        """Area increase needed to absorb ``other`` (R-tree ChooseLeaf)."""
        return self.union(other).area() - self.area()

    def intersects(self, other: "MBR") -> bool:
        return not (
            other.min_x > self.max_x
            or other.max_x < self.min_x
            or other.min_y > self.max_y
            or other.max_y < self.min_y
        )

    def contains_point(self, p: Point) -> bool:
        return self.min_x <= p.x <= self.max_x and self.min_y <= p.y <= self.max_y

    def contains(self, other: "MBR") -> bool:
        return (
            self.min_x <= other.min_x
            and self.min_y <= other.min_y
            and self.max_x >= other.max_x
            and self.max_y >= other.max_y
        )

    # -- distances ---------------------------------------------------------

    def min_distance(self, p: Point) -> float:
        """Smallest distance from ``p`` to any point of the rectangle.

        Zero when ``p`` lies inside.  This is the admissible lower bound
        driving best-first nearest-neighbor search.
        """
        dx = 0.0
        if p.x < self.min_x:
            dx = self.min_x - p.x
        elif p.x > self.max_x:
            dx = p.x - self.max_x
        dy = 0.0
        if p.y < self.min_y:
            dy = self.min_y - p.y
        elif p.y > self.max_y:
            dy = p.y - self.max_y
        if is_zero(dx):
            return dy
        if is_zero(dy):
            return dx
        return math.hypot(dx, dy)

    def max_distance(self, p: Point) -> float:
        """Largest distance from ``p`` to any point of the rectangle."""
        dx = max(abs(p.x - self.min_x), abs(p.x - self.max_x))
        dy = max(abs(p.y - self.min_y), abs(p.y - self.max_y))
        return math.hypot(dx, dy)

    def corners(self) -> Iterator[Point]:
        yield Point(self.min_x, self.min_y)
        yield Point(self.min_x, self.max_y)
        yield Point(self.max_x, self.min_y)
        yield Point(self.max_x, self.max_y)
