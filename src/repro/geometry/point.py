"""Planar points and Euclidean distance primitives.

Everything in the CoSKQ problem is measured with the Euclidean metric on
the plane, so this module is the bottom of the dependency stack: the data
model, the spatial indexes and every algorithm build on it.

Points are plain immutable value objects.  Hot loops in the algorithms
avoid attribute chasing by using the free functions :func:`distance` and
:func:`distance_xy` on raw coordinates where it matters.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Iterator, Sequence, Tuple

from repro.kernels import flat as _flat

__all__ = [
    "Point",
    "distance",
    "distance_xy",
    "squared_distance",
    "midpoint",
    "centroid",
    "diameter",
    "farthest_pair",
]


@dataclass(frozen=True, slots=True, order=True)
class Point:
    """An immutable point in the plane.

    Ordering is lexicographic on ``(x, y)`` which makes points usable as
    deterministic tie-breakers in priority queues.
    """

    x: float
    y: float

    def distance_to(self, other: "Point") -> float:
        """Euclidean distance from this point to ``other``."""
        return math.hypot(self.x - other.x, self.y - other.y)

    def squared_distance_to(self, other: "Point") -> float:
        """Squared Euclidean distance (cheaper; monotone in distance)."""
        dx = self.x - other.x
        dy = self.y - other.y
        return dx * dx + dy * dy

    def translated(self, dx: float, dy: float) -> "Point":
        """A copy of this point shifted by ``(dx, dy)``."""
        return Point(self.x + dx, self.y + dy)

    def as_tuple(self) -> Tuple[float, float]:
        """This point as a plain ``(x, y)`` tuple."""
        return (self.x, self.y)

    def __iter__(self) -> Iterator[float]:
        yield self.x
        yield self.y


def distance(a: Point, b: Point) -> float:
    """Euclidean distance between two points."""
    return math.hypot(a.x - b.x, a.y - b.y)


def distance_xy(ax: float, ay: float, bx: float, by: float) -> float:
    """Euclidean distance between raw coordinates (hot-loop friendly)."""
    return math.hypot(ax - bx, ay - by)


def squared_distance(a: Point, b: Point) -> float:
    """Squared Euclidean distance between two points."""
    dx = a.x - b.x
    dy = a.y - b.y
    return dx * dx + dy * dy


def midpoint(a: Point, b: Point) -> Point:
    """The midpoint of segment ``ab``."""
    return Point((a.x + b.x) / 2.0, (a.y + b.y) / 2.0)


def centroid(points: Iterable[Point]) -> Point:
    """The arithmetic mean of a non-empty collection of points."""
    xs = 0.0
    ys = 0.0
    n = 0
    for p in points:
        xs += p.x
        ys += p.y
        n += 1
    if n == 0:
        raise ValueError("centroid() of an empty collection")
    return Point(xs / n, ys / n)


#: Below this size the scalar quadratic scan beats packing coordinates
#: first; CoSKQ result sets (≤ |q.ψ| members) usually sit under it.
_PACK_THRESHOLD = 8


def diameter(points: Sequence[Point]) -> float:
    """The maximum pairwise distance of ``points`` (0.0 for fewer than 2).

    Quadratic scan; the CoSKQ result sets this is applied to have at most
    ``|q.psi|`` members, so a convex-hull rotating-calipers pass would be
    slower in practice.  Larger inputs route through the bit-identical
    flat-array kernel (:func:`repro.kernels.flat.pairwise_max`).
    """
    n = len(points)
    if n >= _PACK_THRESHOLD and _flat.kernels_enabled():
        xs, ys = _flat.pack_points(points)
        return _flat.pairwise_max(xs, ys)
    best = 0.0
    for i in range(n):
        pi = points[i]
        for j in range(i + 1, n):
            d = pi.distance_to(points[j])
            if d > best:
                best = d
    return best


def farthest_pair(points: Sequence[Point]) -> Tuple[int, int, float]:
    """Indices and distance of the farthest pair of ``points``.

    Returns ``(i, j, d)`` with ``i < j``; ``(0, 0, 0.0)`` when fewer than
    two points are given.  Ties resolve to the first strict improvement
    in scan order — preserved exactly by the kernel fast path.
    """
    n = len(points)
    if n >= _PACK_THRESHOLD and _flat.kernels_enabled():
        xs, ys = _flat.pack_points(points)
        return _flat.farthest_pair(xs, ys)
    besti, bestj, best = 0, 0, 0.0
    for i in range(n):
        pi = points[i]
        for j in range(i + 1, n):
            d = pi.distance_to(points[j])
            if d > best:
                besti, bestj, best = i, j, d
    return besti, bestj, best
