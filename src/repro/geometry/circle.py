"""Circles (disks) and the lens regions used by distance owner pruning.

The owner-driven algorithms of the paper constrain candidate objects to
regions that are intersections of disks:

- ``C(q, r)`` — everything in a feasible set whose query distance owner is
  at distance ``r`` must lie in this disk;
- the *lens* ``C(o1, d12) ∩ C(o2, d12)`` — everything in a set whose
  pairwise distance owners are ``(o1, o2)`` at distance ``d12`` must lie
  in this lens.

This module supplies the disk value object, disk/disk and disk/MBR
relations, and a :class:`Lens` helper for membership tests.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

from repro.geometry.mbr import MBR
from repro.geometry.point import Point
from repro.utils.floatcmp import float_leq

__all__ = ["Circle", "Lens", "Ring"]


@dataclass(frozen=True, slots=True)
class Circle:
    """A closed disk with ``center`` and non-negative ``radius``."""

    center: Point
    radius: float

    def __post_init__(self) -> None:
        if self.radius < 0:
            raise ValueError("negative radius: %r" % (self.radius,))

    def contains(self, p: Point) -> bool:
        """Whether ``p`` lies inside the closed disk (boundary included).

        Uses the non-squared distance so the test agrees exactly with
        the MBR ``min_distance`` pruning bound (squaring underflows for
        denormal coordinates and would make the two disagree).
        """
        return self.center.distance_to(p) <= self.radius

    def contains_circle(self, other: "Circle") -> bool:
        """Whether ``other`` lies entirely inside this disk."""
        d = self.center.distance_to(other.center)
        return float_leq(d + other.radius, self.radius, 1e-12)

    def intersects(self, other: "Circle") -> bool:
        """Whether the two closed disks share at least one point."""
        d = self.center.squared_distance_to(other.center)
        rsum = self.radius + other.radius
        return d <= rsum * rsum

    def intersects_mbr(self, rect: MBR) -> bool:
        """Whether the closed disk intersects the rectangle."""
        return rect.min_distance(self.center) <= self.radius

    def contains_mbr(self, rect: MBR) -> bool:
        """Whether the rectangle lies entirely inside the closed disk."""
        return rect.max_distance(self.center) <= self.radius

    def mbr(self) -> MBR:
        """The bounding rectangle of the disk."""
        return MBR(
            self.center.x - self.radius,
            self.center.y - self.radius,
            self.center.x + self.radius,
            self.center.y + self.radius,
        )

    def area(self) -> float:
        return math.pi * self.radius * self.radius


def lens_chord_length(d: float, r: float) -> float:
    """Length of the chord of a symmetric lens ``C(a, r) ∩ C(b, r)``.

    ``d`` is the distance between the two centers, both disks share radius
    ``r``.  When ``d > 2r`` the lens is empty and 0 is returned.  The chord
    is the segment joining the two intersection points of the circles; its
    length upper-bounds pairwise distances of some lens subsets and shows
    up in the paper's sqrt(3) bound (``d == r`` gives ``r·sqrt(3)``).
    """
    if d > 2.0 * r:
        return 0.0
    if d <= 0.0:
        return 2.0 * r
    half = math.sqrt(max(r * r - (d * d) / 4.0, 0.0))
    return 2.0 * half


@dataclass(frozen=True, slots=True)
class Lens:
    """The intersection region of a sequence of closed disks.

    Degenerates gracefully: one disk behaves as that disk, zero disks as
    the whole plane.
    """

    circles: tuple[Circle, ...]

    @staticmethod
    def of(*circles: Circle) -> "Lens":
        return Lens(tuple(circles))

    def contains(self, p: Point) -> bool:
        return all(c.contains(p) for c in self.circles)

    def is_certainly_empty(self) -> bool:
        """A cheap sufficient (not necessary) emptiness test.

        Checks pairwise disk disjointness only; three pairwise-intersecting
        disks can still have an empty common intersection, so ``False``
        does not guarantee non-emptiness.
        """
        n = len(self.circles)
        for i in range(n):
            for j in range(i + 1, n):
                if not self.circles[i].intersects(self.circles[j]):
                    return True
        return False

    def mbr(self) -> MBR | None:
        """A bounding rectangle of the region (None for the whole plane)."""
        if not self.circles:
            return None
        rect = self.circles[0].mbr()
        for c in self.circles[1:]:
            other = c.mbr()
            if not rect.intersects(other):
                # Empty region: return a degenerate rectangle at a corner.
                return MBR(rect.min_x, rect.min_y, rect.min_x, rect.min_y)
            rect = MBR(
                max(rect.min_x, other.min_x),
                max(rect.min_y, other.min_y),
                min(rect.max_x, other.max_x),
                min(rect.max_y, other.max_y),
            )
        return rect


@dataclass(frozen=True, slots=True)
class Ring:
    """A closed annulus ``{p : inner ≤ d(center, p) ≤ outer}``.

    The approximate algorithms iterate query distance owner candidates in
    the ring between ``C(q, d_f)`` and ``C(q, curCost)``.
    """

    center: Point
    inner: float
    outer: float

    def __post_init__(self) -> None:
        if self.inner < 0 or self.outer < self.inner:
            raise ValueError(
                "degenerate ring: inner=%r outer=%r" % (self.inner, self.outer)
            )

    def contains(self, p: Point) -> bool:
        d2 = self.center.squared_distance_to(p)
        return self.inner * self.inner <= d2 <= self.outer * self.outer

    def filter(self, points: Sequence[Point]) -> list[Point]:
        return [p for p in points if self.contains(p)]
